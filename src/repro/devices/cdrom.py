"""CD-ROM drive model.

CD-ROM drives of the paper's era read a constant-linear-velocity (or partial
CAV) spiral; random access requires a coarse sled move, a spindle speed
adjustment, and re-synchronisation — which is why Table 2 charges a CD-ROM
access 130 ms of latency against only 18 ms for the hard disk.  Sequential
streaming, on the other hand, runs at the (modest) medium rate.

The model: non-sequential accesses pay a base settle time plus a component
proportional to the square root of the travel distance plus a spin-up term
when the jump crosses a large fraction of the disc; sequential continuations
pay nothing but transfer time.  Bandwidth rises slightly toward the outer
edge of the disc (CLV read-out at fixed data density spins slower but many
drives of that era were CAV at the rim; we keep a gentle two-zone profile).
"""

from __future__ import annotations

import math

import numpy as np

from repro.devices.base import Device, DeviceSpec
from repro.sim.units import KB, MB, MSEC


class CdromDevice(Device):
    """A CD-ROM drive: very high random-access latency, low bandwidth."""

    time_category = "cdrom"

    #: pickup repositioning is so expensive (settle + travel + spin-up)
    #: that a merged read streams through small inter-span gaps instead
    _gap_read_through_bytes = 128 * KB

    def __init__(self, name: str = "cdrom", capacity: int = 650 * MB,
                 base_settle: float = 60.0 * MSEC,
                 max_travel: float = 80.0 * MSEC,
                 speed_change: float = 40.0 * MSEC,
                 bandwidth: float = 2.8 * MB,
                 rng: np.random.Generator | None = None) -> None:
        if base_settle < 0 or max_travel < 0 or speed_change < 0:
            raise ValueError("CD-ROM timing parameters must be non-negative")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth}")
        self.base_settle = base_settle
        self.max_travel = max_travel
        self.speed_change = speed_change
        # Nominal latency: settle + average travel (E[sqrt(d)] = 8/15) +
        # expected speed change on half of random jumps.
        nominal_latency = (base_settle + max_travel * (8.0 / 15.0)
                           + speed_change / 2)
        spec = DeviceSpec(name=name, kind="cdrom", latency=nominal_latency,
                          bandwidth=bandwidth)
        super().__init__(spec, capacity=capacity, rng=rng)
        self.head_pos = 0
        self._next_sequential = 0

    def _access_time(self, addr: int, nbytes: int, is_write: bool) -> float:
        if is_write:
            raise ValueError(f"CD-ROM {self.name!r} is read-only")
        duration = 0.0
        if addr != self._next_sequential:
            frac = abs(addr - self.head_pos) / self.capacity
            duration += self.base_settle + self.max_travel * math.sqrt(frac)
            if frac > 0.25:
                duration += self.speed_change
            # re-sync jitter of up to one sector window
            duration += float(self.rng.uniform(0.0, 10.0 * MSEC))
            self.stats.seeks += 1
        transfer = nbytes / self.spec.bandwidth
        positioning = duration
        duration += transfer
        self.head_pos = addr + nbytes
        self._next_sequential = addr + nbytes
        self._components(positioning=positioning, transfer=transfer)
        return duration

    # -- batched fast path ----------------------------------------------

    def _batch_eligible(self) -> bool:
        return True

    def _batch_needs_scalar_head(self, addr: int) -> bool:
        return addr != self._next_sequential

    def _batch_page_math(self, addr: int, count: int, page_bytes: int):
        # Sequential streaming: no settle, no travel, no rng — the scalar
        # path charges 0.0 + transfer, which is transfer bit for bit, and
        # drops the zero positioning component.
        transfer = np.full(count, page_bytes / self.spec.bandwidth)
        return transfer, {"transfer": transfer}

    def _batch_commit_position(self, end_addr: int) -> None:
        self.head_pos = end_addr
        self._next_sequential = end_addr

    def head_position(self) -> int:
        return self.head_pos

    def reset_state(self) -> None:
        super().reset_state()
        self.head_pos = 0
        self._next_sequential = 0
