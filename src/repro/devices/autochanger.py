"""Tape library (autochanger) model.

An autochanger holds a shelf of cartridges and a small number of drives,
with a robot arm that exchanges cartridges.  Its dynamic state — which tapes
are mounted where — is exactly the kind of state SLEDs exist to expose:
data on a mounted tape is seconds away, data on a shelved tape is a minute
or more away.

The :class:`Autochanger` is the single entry point the HSM filesystem uses:
``access(label, addr, nbytes)`` mounts the needed cartridge if necessary
(evicting the least-recently-used drive) and performs the access, returning
the total duration.
"""

from __future__ import annotations

import numpy as np

from repro.devices.tape import TapeCartridge, TapeDevice


class UnknownCartridgeError(KeyError):
    """Requested a cartridge label the library does not hold."""


class Autochanger:
    """A robot tape library with LRU drive allocation."""

    def __init__(self, drives: list[TapeDevice],
                 cartridges: list[TapeCartridge],
                 exchange_time: float = 10.0,
                 rng: np.random.Generator | None = None) -> None:
        if not drives:
            raise ValueError("autochanger needs at least one drive")
        if exchange_time < 0:
            raise ValueError(f"exchange time must be non-negative: {exchange_time}")
        self.drives = list(drives)
        self.shelf: dict[str, TapeCartridge] = {}
        for cart in cartridges:
            if cart.label in self.shelf:
                raise ValueError(f"duplicate cartridge label {cart.label!r}")
            self.shelf[cart.label] = cart
        self.exchange_time = exchange_time
        self.rng = rng if rng is not None else np.random.default_rng(0)
        #: drive use order for LRU eviction; most recent last
        self._use_order: list[TapeDevice] = list(drives)
        #: robot activity counters (exchanges = cartridge swaps performed)
        self.exchanges = 0
        self.loads = 0
        self.unloads = 0
        #: bumps on every mount/access — anything that can move a drive,
        #: a cartridge position, or the LRU drive order all of which feed
        #: estimate_latency.  Folded into HsmFs.state_epoch.
        self.state_version = 0
        #: cumulative robot/load seconds, keyed like
        #: :attr:`Device.component_totals` so the lifecycle layer can
        #: diff it alongside the drives' own totals
        self.component_totals: dict[str, float] = {}

    # -- queries ----------------------------------------------------------

    def cartridge(self, label: str) -> TapeCartridge:
        try:
            return self.shelf[label]
        except KeyError:
            raise UnknownCartridgeError(label) from None

    def drive_holding(self, label: str) -> TapeDevice | None:
        """The drive currently holding cartridge ``label``, if any."""
        for drive in self.drives:
            if drive.loaded is not None and drive.loaded.label == label:
                return drive
        return None

    def mounted_labels(self) -> list[str]:
        """Labels of all currently mounted cartridges."""
        return [d.loaded.label for d in self.drives if d.loaded is not None]

    def estimate_latency(self, label: str, addr: int) -> float:
        """Expected time-to-first-byte for ``addr`` on cartridge ``label``.

        Performs no motion.  A mounted cartridge costs only a locate; an
        unmounted one costs a possible unload, an exchange, a load, and an
        average locate.
        """
        cart = self.cartridge(label)
        drive = self.drive_holding(label)
        if drive is not None:
            return drive.locate_time(cart.position, addr)
        victim = self._use_order[0]
        penalty = self.exchange_time + victim.load_time
        if victim.loaded is not None:
            penalty += victim.unload_time
        return penalty + victim.locate_startup + victim.full_wind_time / 3

    # -- operations -----------------------------------------------------------

    def mount(self, label: str) -> tuple[TapeDevice, float]:
        """Ensure cartridge ``label`` is in a drive.

        Returns ``(drive, seconds)`` where ``seconds`` is the robot/load
        time spent (0.0 when already mounted).
        """
        self.state_version += 1
        drive = self.drive_holding(label)
        if drive is not None:
            self._touch(drive)
            return drive, 0.0
        cart = self.cartridge(label)
        victim = self._use_order[0]
        duration = 0.0
        if victim.loaded is not None:
            duration += victim.unload()
            self.unloads += 1
        duration += self.exchange_time
        duration += victim.load(cart)
        self.exchanges += 1
        self.loads += 1
        self._touch(victim)
        if duration != 0.0:
            self.component_totals["mount"] = (
                self.component_totals.get("mount", 0.0) + duration)
        return victim, duration

    def access(self, label: str, addr: int, nbytes: int,
               is_write: bool = False) -> float:
        """Mount if needed, then read or write; returns total duration."""
        drive, duration = self.mount(label)
        if is_write:
            duration += drive.write(addr, nbytes)
        else:
            duration += drive.read(addr, nbytes)
        self.state_version += 1  # tape position moved: locate estimates did too
        return duration

    def _touch(self, drive: TapeDevice) -> None:
        self._use_order.remove(drive)
        self._use_order.append(drive)
