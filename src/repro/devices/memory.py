"""Primary-memory (buffer cache) device model.

The paper's Table 2 characterises memory at 175 ns latency and 48 MB/s copy
bandwidth on the Unix-utility machine (Table 3: 210 ns / 87 MB/s on the
LHEASOFT machine).  Those are lmbench ``lat_mem_rd`` / ``bcopy`` style
numbers, which is what a cached page read costs once the kernel copies it to
user space.
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import Device, DeviceSpec
from repro.sim.units import GB, MB, NSEC


class MemoryDevice(Device):
    """RAM: constant latency, constant bandwidth, no positional state."""

    time_category = "memory"

    def __init__(self, name: str = "memory", latency: float = 175 * NSEC,
                 bandwidth: float = 48 * MB, capacity: int = 4 * GB,
                 rng: np.random.Generator | None = None) -> None:
        if latency < 0 or bandwidth <= 0:
            raise ValueError("memory latency must be >= 0 and bandwidth > 0")
        spec = DeviceSpec(name=name, kind="memory",
                          latency=latency, bandwidth=bandwidth)
        super().__init__(spec, capacity=capacity, rng=rng)

    def _batch_eligible(self) -> bool:
        return True

    def _batch_page_math(self, addr: int, count: int, page_bytes: int):
        # No positional state: every read is latency + transfer.
        transfer = np.full(count, page_bytes / self.spec.bandwidth)
        durations = np.full(count, self.spec.latency + page_bytes
                            / self.spec.bandwidth)
        components = {
            "overhead": np.full(count, self.spec.latency),
            "transfer": transfer,
        }
        return durations, components

    def _access_time(self, addr: int, nbytes: int, is_write: bool) -> float:
        transfer = nbytes / self.spec.bandwidth
        self._components(overhead=self.spec.latency, transfer=transfer)
        return self.spec.latency + transfer
