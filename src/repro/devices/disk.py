"""Hard-disk model: seek curve, rotational latency, zoned transfer rates.

The model follows Ruemmler & Wilkes' introduction to disk drive modeling
[RW94] at the level of detail SLEDs needs:

* **Seek** — a square-root curve ``t(d) = t_min + (t_max - t_min) * sqrt(d)``
  where ``d`` is the fraction of the total capacity the head must travel.
  Track-to-track moves cost ``t_min``; a full-stroke seek costs ``t_max``.
  A zero-distance access (sequential continuation) costs no seek at all.
* **Rotation** — a random rotational delay uniform in one revolution for any
  non-sequential access; sequential continuations ride the same track and
  pay none.
* **Zones** — outer cylinders hold more sectors per track and therefore
  transfer faster.  The zone table maps a starting fraction of capacity to a
  bandwidth, reproducing the multi-zone behaviour of [Van97].  The *nominal*
  bandwidth reported in the spec is the capacity-weighted mean.

The defaults are tuned so the lmbench-style characterisation in
:mod:`repro.bench.lmbench` reproduces the paper's Table 2 disk row
(18 ms latency, 9.0 MB/s).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.devices.base import Device, DeviceSpec
from repro.sim.units import GB, MB, MSEC


@dataclass(frozen=True)
class Zone:
    """One disk zone: starts at ``start_frac`` of capacity, transfers at
    ``bandwidth`` bytes/second."""

    start_frac: float
    bandwidth: float


#: Three-zone profile of a late-1990s 9 GB drive averaging ~9 MB/s.
DEFAULT_ZONES = (
    Zone(0.00, 11.0 * MB),
    Zone(0.40, 9.0 * MB),
    Zone(0.75, 6.7 * MB),
)


class DiskDevice(Device):
    """A hard disk with head-position state and a seek-time curve."""

    time_category = "disk"

    #: the controller setup cost is per command, not per scatter segment —
    #: continuation spans of a merged request skip it (seeks between
    #: fragmented spans are still paid through ``_access_time``)
    _merge_overhead_components = ("overhead",)

    def __init__(self, name: str = "disk", capacity: int = 9 * GB,
                 min_seek: float = 2.0 * MSEC, max_seek: float = 22.0 * MSEC,
                 rpm: float = 5400.0, zones: tuple[Zone, ...] = DEFAULT_ZONES,
                 controller_overhead: float = 0.3 * MSEC,
                 rng: np.random.Generator | None = None) -> None:
        if not zones or zones[0].start_frac != 0.0:
            raise ValueError("zone table must start at fraction 0.0")
        if any(b.start_frac <= a.start_frac for a, b in zip(zones, zones[1:])):
            raise ValueError("zone start fractions must be strictly increasing")
        if min_seek < 0 or max_seek < min_seek:
            raise ValueError("need 0 <= min_seek <= max_seek")
        if rpm <= 0:
            raise ValueError(f"rpm must be positive: {rpm}")
        self.min_seek = min_seek
        self.max_seek = max_seek
        self.rotation_period = 60.0 / rpm
        self.zones = zones
        self.controller_overhead = controller_overhead
        # Nominal latency: average seek (sqrt curve averaged over uniformly
        # random start/end positions gives E[sqrt(d)] with d = |x - y|,
        # which integrates to 8/15) plus half a rotation plus overhead.
        avg_seek = min_seek + (max_seek - min_seek) * (8.0 / 15.0)
        nominal_latency = avg_seek + self.rotation_period / 2 + controller_overhead
        spec = DeviceSpec(name=name, kind="disk", latency=nominal_latency,
                          bandwidth=self._mean_bandwidth(zones, capacity))
        super().__init__(spec, capacity=capacity, rng=rng)
        self.head_pos = 0
        self._next_sequential = 0
        # zone table as flat arrays for the vectorised batch kernel
        self._zone_starts = np.array([z.start_frac for z in zones])
        self._zone_bandwidths = np.array([z.bandwidth for z in zones])

    @staticmethod
    def _mean_bandwidth(zones: tuple[Zone, ...], capacity: int) -> float:
        total = 0.0
        for i, zone in enumerate(zones):
            end = zones[i + 1].start_frac if i + 1 < len(zones) else 1.0
            total += (end - zone.start_frac) * zone.bandwidth
        return total

    # -- model ----------------------------------------------------------

    def zone_index(self, addr: int) -> int:
        """Index of the zone containing ``addr``."""
        frac = addr / self.capacity
        index = 0
        for i, zone in enumerate(self.zones):
            if frac >= zone.start_frac:
                index = i
        return index

    def zone_range(self, index: int) -> tuple[int, int]:
        """Byte range [start, end) of zone ``index``.

        Edges round *up* so that ``zone_index(start)`` is always
        ``index`` despite floating-point fraction boundaries.
        """
        if not 0 <= index < len(self.zones):
            raise ValueError(f"no zone {index} (have {len(self.zones)})")
        start = math.ceil(self.zones[index].start_frac * self.capacity)
        end = (math.ceil(self.zones[index + 1].start_frac * self.capacity)
               if index + 1 < len(self.zones) else self.capacity)
        return start, end

    def bandwidth_at(self, addr: int) -> float:
        """Transfer rate of the zone containing ``addr``."""
        return self.zones[self.zone_index(addr)].bandwidth

    def seek_time(self, from_addr: int, to_addr: int) -> float:
        """Seek duration between two byte addresses (0 when equal)."""
        distance = abs(to_addr - from_addr)
        if distance == 0:
            return 0.0
        frac = distance / self.capacity
        return self.min_seek + (self.max_seek - self.min_seek) * math.sqrt(frac)

    def _access_time(self, addr: int, nbytes: int, is_write: bool) -> float:
        sequential = addr == self._next_sequential
        duration = self.controller_overhead
        positioning = 0.0
        if not sequential:
            seek = self.seek_time(self.head_pos, addr)
            rotation = float(self.rng.uniform(0.0, self.rotation_period))
            duration += seek
            duration += rotation
            positioning = seek + rotation
            self.stats.seeks += 1
        transfer = nbytes / self.bandwidth_at(addr)
        duration += transfer
        self.head_pos = addr + nbytes
        self._next_sequential = addr + nbytes
        self._components(overhead=self.controller_overhead,
                         positioning=positioning, transfer=transfer)
        return duration

    # -- batched fast path ----------------------------------------------

    def _batch_eligible(self) -> bool:
        return True

    def _batch_needs_scalar_head(self, addr: int) -> bool:
        return addr != self._next_sequential

    def _batch_page_math(self, addr: int, count: int, page_bytes: int):
        # Sequential continuations: no seek, no rotation, no rng — each
        # access is controller_overhead + nbytes / bandwidth_at(addr),
        # with the zone looked up per address exactly as zone_index does
        # (largest zone whose start fraction the address has reached).
        addrs = addr + page_bytes * np.arange(count, dtype=np.int64)
        frac = addrs / self.capacity
        idx = (frac[:, None] >= self._zone_starts).sum(axis=1) - 1
        transfer = page_bytes / self._zone_bandwidths[idx]
        durations = self.controller_overhead + transfer
        components = {
            "overhead": np.full(count, self.controller_overhead),
            "transfer": transfer,
        }
        return durations, components

    def _batch_commit_position(self, end_addr: int) -> None:
        self.head_pos = end_addr
        self._next_sequential = end_addr

    def head_position(self) -> int:
        return self.head_pos

    def reset_state(self) -> None:
        super().reset_state()
        self.head_pos = 0
        self._next_sequential = 0
