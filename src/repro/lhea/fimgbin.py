"""``fimgbin`` — rebin a FITS image with a rectangular boxcar filter.

The paper (§5.3): "fimgbin rebins an image with a rectangular boxcar
filter.  The amount of data written is smaller than the input by a fixed
factor, typically four or 16."  A reduction factor of 4 is a 2×2 boxcar;
16 is 4×4.  "We modified fimgbin to reorder the reads on its input file
according to SLEDs" — each input pixel contributes to exactly one output
bin, so chunks can arrive in any order and accumulate.

The write paths differ deliberately, mirroring the paper's observation
that "the write path of the array-based code ... is substantially more
complex and does more internal buffering, partially defeating our attempts
to fully order I/Os":

* linear mode streams output rows as each boxcar band of input rows
  completes (interleaving writes with reads);
* SLEDs mode must buffer the whole accumulator and write the output at
  the end (pick order gives no completion guarantee until exhaustion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.apps.common import BINNING_CPU_PER_ELEMENT
from repro.core.ffsleds import (
    ffsleds_pick_finish,
    ffsleds_pick_init,
    ffsleds_pick_next_read,
)
from repro.fits.cfitsio import (
    FitsImageInfo,
    create_image,
    open_image,
    read_elements,
)
from repro.fits.format import FitsFormatError
from repro.sim.errors import InvalidArgumentError

_ELEMENT_CHUNK_BYTES = 64 * 1024
#: per-input-element accumulate cost (array indexing + add)
REBIN_CPU_PER_ELEMENT = 20.0e-9


@dataclass
class FimgbinResult:
    """Output image metadata."""

    out_path: str
    in_shape: tuple[int, int]
    out_shape: tuple[int, int]
    factor: int


def fimgbin(kernel, in_path: str, out_path: str, factor: int = 4,
            use_sleds: bool = False) -> FimgbinResult:
    """Rebin a 2-D image by ``factor`` (4 → 2×2 boxcar, 16 → 4×4)."""
    side = math.isqrt(factor)
    if side * side != factor or side < 1:
        raise InvalidArgumentError(
            f"reduction factor must be a perfect square: {factor}")
    fd = kernel.open(in_path)
    try:
        info = open_image(kernel, fd, in_path)
        if len(info.shape) != 2:
            raise FitsFormatError(
                f"{in_path}: fimgbin needs a 2-D image, got "
                f"{len(info.shape)} axes")
        width, height = info.shape  # FITS: NAXIS1 = fastest = width
        if width % side or height % side:
            raise InvalidArgumentError(
                f"image {width}x{height} not divisible by boxcar {side}")
        if use_sleds:
            out = _rebin_sleds(kernel, fd, info, width, height, side)
        else:
            out = _rebin_linear(kernel, fd, info, width, height, side)
    finally:
        kernel.close(fd)
    # rebinning raw values commutes with the affine BSCALE/BZERO transform,
    # so the output keeps the input's physical-value cards
    create_image(kernel, out_path, out, bscale=info.bscale, bzero=info.bzero)
    return FimgbinResult(out_path=out_path, in_shape=(width, height),
                         out_shape=(width // side, height // side),
                         factor=factor)


def _rebin_linear(kernel, fd: int, info: FitsImageInfo,
                  width: int, height: int, side: int) -> np.ndarray:
    """Row-band streaming rebin (the unmodified tool's access pattern)."""
    out_width = width // side
    out = np.zeros((height // side, out_width), dtype=np.float64)
    rows_per_chunk = max(1, _ELEMENT_CHUNK_BYTES
                         // (width * info.element_size))
    rows_per_chunk = max(side, (rows_per_chunk // side) * side)
    row = 0
    while row < height:
        take = min(rows_per_chunk, height - row)
        values = read_elements(kernel, fd, info, row * width, take * width,
                               apply_scaling=False)
        kernel.charge_cpu(take * width * REBIN_CPU_PER_ELEMENT)
        band = values.reshape(take, width).astype(np.float64)
        binned = band.reshape(take // side, side,
                              out_width, side).sum(axis=(1, 3))
        out[row // side: row // side + take // side] = binned
        row += take
    return _finalize(out, side, info)


def _rebin_sleds(kernel, fd: int, info: FitsImageInfo,
                 width: int, height: int, side: int) -> np.ndarray:
    """Accumulate contributions from element chunks in pick order."""
    out_width = width // side
    acc = np.zeros((height // side) * out_width, dtype=np.float64)
    per_chunk = max(1, _ELEMENT_CHUNK_BYTES // info.element_size)
    ffsleds_pick_init(kernel, fd, data_offset=info.data_offset,
                      element_size=info.element_size,
                      element_count=info.element_count,
                      preferred_elements=per_chunk)
    try:
        while True:
            advice = ffsleds_pick_next_read(kernel, fd)
            if advice is None:
                break
            first, count = advice
            values = read_elements(kernel, fd, info, first, count,
                                   apply_scaling=False)
            kernel.charge_cpu(count * REBIN_CPU_PER_ELEMENT)
            idx = np.arange(first, first + count)
            out_idx = (idx // width // side) * out_width + (idx % width) // side
            np.add.at(acc, out_idx, values.astype(np.float64))
    finally:
        ffsleds_pick_finish(kernel, fd)
    return _finalize(acc.reshape(height // side, out_width), side, info)


def _finalize(summed: np.ndarray, side: int,
              info: FitsImageInfo) -> np.ndarray:
    """Boxcar mean, cast back to the input pixel type."""
    mean = summed / (side * side)
    native = info.dtype.newbyteorder("=")
    if np.issubdtype(native, np.integer):
        return np.rint(mean).astype(native)
    return mean.astype(native)
