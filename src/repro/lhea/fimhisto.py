"""``fimhisto`` — copy a FITS image and append a histogram of its pixels.

The paper (§5.3): "fimhisto copies an input data image file to an output
file and appends an additional data column containing a histogram of the
pixel values.  It is implemented in three passes.  The first pass copies
the main data unit without any processing.  The second pass reads the data
again (including performing a data format conversion, if necessary) to
prepare for binning the data into the histogram.  The third pass performs
the actual binning operation, then appends the histogram to the output
file.  This three-pass algorithm resulted in observed cache behavior like
that shown in Figure 3."

"We adapted fimhisto to use SLEDs in the second and third passes over the
data" — both are order-independent reductions (min/max, then counts), so
the ``ff`` element-granular pick sessions drop in directly.  The copy pass
stays linear in both modes, and the output write traffic (~1/4 of the I/O)
is what SLEDs cannot help with — the reason fimhisto's gains are smaller
than wc/grep's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.common import BINNING_CPU_PER_ELEMENT
from repro.core.ffsleds import (
    ffsleds_pick_finish,
    ffsleds_pick_init,
    ffsleds_pick_next_read,
)
from repro.fits.cfitsio import (
    FitsImageInfo,
    append_bintable,
    open_image,
    read_elements,
)
from repro.fits.format import BinTableHDU
from repro.sim.errors import InvalidArgumentError

#: per-element cost of the format-conversion scan (pass 2)
CONVERT_CPU_PER_ELEMENT = 10.0e-9
_COPY_CHUNK = 128 * 1024
_ELEMENT_CHUNK_BYTES = 64 * 1024


@dataclass
class FimhistoResult:
    """Histogram appended to the output file."""

    out_path: str
    bin_edges: np.ndarray
    counts: np.ndarray
    data_min: float
    data_max: float


def fimhisto(kernel, in_path: str, out_path: str, nbins: int = 64,
             use_sleds: bool = False) -> FimhistoResult:
    """Run the three-pass copy+histogram; returns the computed histogram."""
    if nbins <= 0:
        raise InvalidArgumentError(f"nbins must be positive: {nbins}")
    _copy_file(kernel, in_path, out_path)
    fd = kernel.open(in_path)
    try:
        info = open_image(kernel, fd, in_path)
        data_min, data_max = _pass_minmax(kernel, fd, info, use_sleds)
        counts, edges = _pass_bin(kernel, fd, info, data_min, data_max,
                                  nbins, use_sleds)
    finally:
        kernel.close(fd)
    table = BinTableHDU(columns={
        "BIN_LO": edges[:-1].astype(">f8"),
        "BIN_HI": edges[1:].astype(">f8"),
        "COUNTS": counts.astype(">i4"),
    })
    append_bintable(kernel, out_path, table)
    return FimhistoResult(out_path=out_path, bin_edges=edges, counts=counts,
                          data_min=float(data_min), data_max=float(data_max))


def _copy_file(kernel, in_path: str, out_path: str) -> None:
    """Pass 1: byte-for-byte copy through the syscall layer."""
    src = kernel.open(in_path)
    dst = kernel.open(out_path, "w")
    try:
        while True:
            blob = kernel.read(src, _COPY_CHUNK)
            if not blob:
                break
            kernel.write(dst, blob)
    finally:
        kernel.close(dst)
        kernel.close(src)


def _element_ranges(kernel, fd: int, info: FitsImageInfo, use_sleds: bool):
    """Yield (first_element, count) covering the image exactly once."""
    per_chunk = max(1, _ELEMENT_CHUNK_BYTES // info.element_size)
    if not use_sleds:
        first = 0
        while first < info.element_count:
            count = min(per_chunk, info.element_count - first)
            yield first, count
            first += count
        return
    ffsleds_pick_init(kernel, fd, data_offset=info.data_offset,
                      element_size=info.element_size,
                      element_count=info.element_count,
                      preferred_elements=per_chunk)
    try:
        while True:
            advice = ffsleds_pick_next_read(kernel, fd)
            if advice is None:
                return
            yield advice
    finally:
        ffsleds_pick_finish(kernel, fd)


def _pass_minmax(kernel, fd: int, info: FitsImageInfo,
                 use_sleds: bool) -> tuple[float, float]:
    """Pass 2: scan with format conversion to find the data range."""
    lo = np.inf
    hi = -np.inf
    for first, count in _element_ranges(kernel, fd, info, use_sleds):
        values = read_elements(kernel, fd, info, first, count)
        kernel.charge_cpu(count * CONVERT_CPU_PER_ELEMENT)
        lo = min(lo, float(values.min()))
        hi = max(hi, float(values.max()))
    if not np.isfinite(lo):
        lo = hi = 0.0
    return lo, hi


def _pass_bin(kernel, fd: int, info: FitsImageInfo, lo: float, hi: float,
              nbins: int, use_sleds: bool) -> tuple[np.ndarray, np.ndarray]:
    """Pass 3: histogram the pixel values."""
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, nbins + 1)
    counts = np.zeros(nbins, dtype=np.int64)
    for first, count in _element_ranges(kernel, fd, info, use_sleds):
        values = read_elements(kernel, fd, info, first, count)
        kernel.charge_cpu(count * BINNING_CPU_PER_ELEMENT)
        chunk_counts, _ = np.histogram(values, bins=edges)
        counts += chunk_counts
    return counts, edges
