"""LHEASOFT ports: the two astronomy image tools the paper adapted."""

from repro.lhea.fimgbin import FimgbinResult, fimgbin
from repro.lhea.fimhisto import FimhistoResult, fimhisto

__all__ = ["fimhisto", "FimhistoResult", "fimgbin", "FimgbinResult"]
