"""Discrete-event core: a deterministic event loop over the virtual clock.

The synchronous substrate charges every device access to one global clock,
so no request ever queues and no task's CPU overlaps another task's I/O.
This module supplies the missing time model:

* :class:`EventLoop` — a priority queue of ``(time, seq)``-ordered events
  layered on :class:`~repro.sim.clock.VirtualClock`.  Popping an event
  whose timestamp lies in the future advances the clock to it (charged to
  the event's category); events at equal timestamps fire in FIFO submission
  order, which is what makes concurrent runs reproducible bit for bit.
* :class:`IoFuture` — the completion handle tasks block on.  A future is
  resolved (or failed) from inside an event callback; registered waiters
  are notified in registration order.

Nothing here reads wall-clock time or draws randomness: given the same
submission sequence, two runs replay the identical event order.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Callable

from repro.sim.clock import VirtualClock
from repro.sim.errors import InvalidArgumentError


class Event:
    """One scheduled callback; compare by ``(time, seq)`` for heap order."""

    __slots__ = ("time", "seq", "callback", "category", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None],
                 category: str) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.category = category
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class EventLoop:
    """A deterministic discrete-event queue driving one virtual clock.

    Determinism rules (relied on by the concurrency tests):

    1. events fire in nondecreasing time order;
    2. events at the *same* time fire in submission (FIFO) order — the
       tie-break is a monotonically increasing sequence number, never
       object identity or hash order;
    3. the clock only moves forward, to the timestamp of the event being
       fired, charged to that event's category (device completions charge
       their device's category, so a solo run's per-category totals are
       identical to the synchronous path's).
    """

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._fired = 0
        #: optional wall-clock profiler (repro.obs.profile); None = off.
        #: Reads wall time only — virtual timings are bit-identical with
        #: a profiler attached or not.
        self.profiler = None

    # -- scheduling ------------------------------------------------------

    def at(self, time: float, callback: Callable[[], None],
           category: str = "wait") -> Event:
        """Schedule ``callback`` to fire when virtual time reaches ``time``.

        ``time`` may equal the current time (fires on the next ``step``)
        but never lie in the past — the clock is monotonic.
        """
        if time < self.clock.now:
            raise InvalidArgumentError(
                f"cannot schedule event in the past: {time} < "
                f"{self.clock.now}")
        event = Event(time, next(self._seq), callback, category)
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay: float, callback: Callable[[], None],
              category: str = "wait") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise InvalidArgumentError(f"negative delay: {delay}")
        return self.at(self.clock.now + delay, callback, category)

    def cancel(self, event: Event) -> None:
        """Drop a scheduled event (lazy removal; safe if already fired)."""
        event.cancelled = True

    # -- execution -------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of events still scheduled (cancelled ones excluded)."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def fired(self) -> int:
        """Total events fired so far (monitoring / tests)."""
        return self._fired

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or None when idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next event, advancing the clock to it.

        Returns False when no live events remain.
        """
        profiler = self.profiler
        t0 = perf_counter() if profiler is not None else 0.0
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time > self.clock.now:
                # advance_to lands bit-exactly on the timestamp; a
                # subtract-then-add round trip can drift an ulp
                self.clock.advance_to(event.time, event.category)
            self._fired += 1
            event.callback()
            if profiler is not None:
                profiler.add("event_loop.dispatch", t0)
            return True
        return False

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Fire events until the queue drains; returns the count fired."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"event loop exceeded {max_events} events; "
                    f"likely a rescheduling cycle")
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventLoop(now={self.clock.now:.6f}, pending={self.pending})"


class IoFuture:
    """Completion handle for one in-flight I/O request.

    Resolved exactly once, from inside an event callback.  Tasks yield the
    future to their scheduler, which parks them until resolution; waiters
    registered with :meth:`add_done_callback` run synchronously inside the
    resolving event, in registration order.
    """

    __slots__ = ("_done", "_value", "_exception", "_callbacks", "label")

    def __init__(self, label: str = "") -> None:
        self._done = False
        self._value = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["IoFuture"], None]] = []
        self.label = label

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self):
        """The completion payload; raises the stored exception if failed."""
        if not self._done:
            raise InvalidArgumentError(
                f"future {self.label!r} is not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exception if self._done else None

    def resolve(self, value=None) -> None:
        self._settle(value, None)

    def fail(self, exception: BaseException) -> None:
        self._settle(None, exception)

    def _settle(self, value, exception) -> None:
        if self._done:
            raise InvalidArgumentError(
                f"future {self.label!r} is already resolved")
        self._done = True
        self._value = value
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done_callback(self,
                          callback: Callable[["IoFuture"], None]) -> None:
        """Run ``callback(self)`` on resolution (immediately if done)."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self._done else "pending"
        return f"<IoFuture {self.label!r} {state}>"
