"""Discrete-event core: a deterministic event loop over the virtual clock.

The synchronous substrate charges every device access to one global clock,
so no request ever queues and no task's CPU overlaps another task's I/O.
This module supplies the missing time model:

* :class:`EventLoop` — a calendar-queue scheduler of ``(time, seq)``-ordered
  events layered on :class:`~repro.sim.clock.VirtualClock`.  Popping an
  event whose timestamp lies in the future advances the clock to it (charged
  to the event's category); events at equal timestamps fire in FIFO
  submission order, which is what makes concurrent runs reproducible bit
  for bit.
* :class:`HeapEventLoop` — the original single-binary-heap implementation,
  kept as the reference for the old-vs-new property tests and the
  core-throughput benchmark baseline.
* :class:`IoFuture` — the completion handle tasks block on.  A future is
  resolved (or failed) from inside an event callback; registered waiters
  are notified in registration order.

The calendar queue keeps one FIFO deque per distinct timestamp plus a
binary heap of the raw timestamps (floats compare at C speed, unlike
``Event.__lt__``), and a dedicated *now deque* for events scheduled at the
current clock reading — the ``at_now`` fast path that plugged dispatch
chains hit on every flush.  Ordering stays exactly ``(time, seq)``:
within a deque, arrival order *is* seq order, and any heap bucket at time
``T`` was populated while the clock was strictly before ``T``, so its
events always carry smaller seqs than now-deque events at ``T`` and must
drain first.

Cancellation is eager where O(1) (either end of a deque) and lazily
compacted otherwise, so cancelled events no longer rot in the queue, and
``pending`` is an exact live counter rather than an O(n) scan.

Nothing here reads wall-clock time or draws randomness: given the same
submission sequence, two runs replay the identical event order.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from time import perf_counter
from typing import Callable

from repro.sim.clock import VirtualClock
from repro.sim.errors import InvalidArgumentError


class Event:
    """One scheduled callback; compare by ``(time, seq)`` for heap order."""

    __slots__ = ("time", "seq", "callback", "category", "cancelled", "_q")

    def __init__(self, time: float, seq: int, callback: Callable[[], None],
                 category: str) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.category = category
        self.cancelled = False
        #: the deque currently holding this event (None once popped);
        #: lets cancel() unlink eagerly when the event sits at either end
        self._q: deque[Event] | None = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class EventLoop:
    """A deterministic calendar-queue event loop driving one virtual clock.

    Determinism rules (relied on by the concurrency tests):

    1. events fire in nondecreasing time order;
    2. events at the *same* time fire in submission (FIFO) order — the
       tie-break is a monotonically increasing sequence number, never
       object identity or hash order;
    3. the clock only moves forward, to the timestamp of the event being
       fired, charged to that event's category (device completions charge
       their device's category, so a solo run's per-category totals are
       identical to the synchronous path's).

    Structure: ``_buckets`` maps each distinct future timestamp to a FIFO
    deque; ``_times`` is a min-heap of those raw timestamps (a timestamp
    may appear more than once after its bucket empties and is re-created —
    stale entries are dropped on pop).  ``_now_q`` collects events
    scheduled at exactly ``clock.now`` so same-timestamp chains never touch
    the heap at all; if the clock moves on while such events are still
    queued (a task charging CPU between steps), they migrate to a regular
    bucket first.
    """

    kind = "bucket"

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        #: timestamp -> FIFO deque of events at that timestamp
        self._buckets: dict[float, deque[Event]] = {}
        #: min-heap of bucket timestamps (may hold stale duplicates)
        self._times: list[float] = []
        #: events scheduled at exactly ``_now_time`` (the at-now fast path)
        self._now_q: deque[Event] = deque()
        self._now_time = clock.now
        self._seq = 0
        self._fired = 0
        self._live = 0
        #: cancelled events still buried mid-deque (compacted when they
        #: outnumber live ones)
        self._stale = 0
        #: optional wall-clock profiler (repro.obs.profile); None = off.
        #: Reads wall time only — virtual timings are bit-identical with
        #: a profiler attached or not.
        self.profiler = None

    # -- scheduling ------------------------------------------------------

    def at(self, time: float, callback: Callable[[], None],
           category: str = "wait") -> Event:
        """Schedule ``callback`` to fire when virtual time reaches ``time``.

        ``time`` may equal the current time (fires on the next ``step``)
        but never lie in the past — the clock is monotonic.
        """
        now = self.clock.now
        if time < now:
            raise InvalidArgumentError(
                f"cannot schedule event in the past: {time} < {now}")
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, category)
        self._live += 1
        if time == now:
            if self._now_q and self._now_time != now:
                self._flush_now()
            self._now_time = now
            self._now_q.append(event)
            event._q = self._now_q
        else:
            bucket = self._buckets.get(time)
            if bucket is None:
                bucket = self._buckets[time] = deque()
                heapq.heappush(self._times, time)
            bucket.append(event)
            event._q = bucket
        return event

    def after(self, delay: float, callback: Callable[[], None],
              category: str = "wait") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise InvalidArgumentError(f"negative delay: {delay}")
        return self.at(self.clock.now + delay, callback, category)

    def cancel(self, event: Event) -> None:
        """Drop a scheduled event (safe if already fired or cancelled).

        The event is unlinked immediately when it sits at either end of
        its deque; otherwise it is marked and swept by the next pop to
        reach it, with a full compaction once cancelled events outnumber
        live ones.  Either way ``pending`` reflects the cancellation at
        once.
        """
        if event.cancelled:
            return
        event.cancelled = True
        q = event._q
        if q is None:
            return  # already fired (or already swept)
        self._live -= 1
        if q[0] is event:
            q.popleft()
            event._q = None
        elif q[-1] is event:
            q.pop()
            event._q = None
        else:
            self._stale += 1
            if self._stale > 64 and self._stale > self._live:
                self._compact()
            return
        if not q and q is not self._now_q:
            # empty bucket: drop the dict entry; its heap timestamp goes
            # stale and is skipped on the next pop that reaches it
            self._buckets.pop(event.time, None)

    def _flush_now(self) -> None:
        """Migrate a left-over now-deque into the bucket structure.

        Only needed when the clock advanced (a task charging CPU) while
        same-timestamp events were still queued; their timestamp is now in
        the past, which is legal — they simply fire without advancing the
        clock.  Bucket events at the same timestamp were scheduled strictly
        earlier (smaller seqs), so appending preserves FIFO order.
        """
        nq = self._now_q
        t = self._now_time
        bucket = self._buckets.get(t)
        if bucket is None:
            self._buckets[t] = nq
            heapq.heappush(self._times, t)
            self._now_q = deque()
        else:
            bucket.extend(nq)
            for event in nq:
                event._q = bucket
            nq.clear()

    def _compact(self) -> None:
        """Rebuild every deque without its cancelled entries."""
        for time, bucket in list(self._buckets.items()):
            live = deque(e for e in bucket if not e.cancelled)
            for event in bucket:
                if event.cancelled:
                    event._q = None
            if live:
                self._buckets[time] = live
                for event in live:
                    event._q = live
            else:
                del self._buckets[time]
        nq = deque(e for e in self._now_q if not e.cancelled)
        for event in self._now_q:
            if event.cancelled:
                event._q = None
        self._now_q = nq
        for event in nq:
            event._q = nq
        self._stale = 0

    # -- execution -------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of events still scheduled (cancelled ones excluded).

        O(1): an exact counter maintained on schedule/cancel/fire.
        """
        return self._live

    @property
    def fired(self) -> int:
        """Total events fired so far (monitoring / tests)."""
        return self._fired

    def _pop_next(self) -> Event | None:
        """Remove and return the earliest live event, or None when idle."""
        nq = self._now_q
        if nq and self._now_time != self.clock.now:
            self._flush_now()
            nq = self._now_q
        buckets = self._buckets
        times = self._times
        while True:
            if times:
                t = times[0]
                bucket = buckets.get(t)
                if not bucket:
                    heapq.heappop(times)
                    if bucket is not None:
                        del buckets[t]
                    continue
                if nq and t > self._now_time:
                    event = nq.popleft()
                else:
                    # bucket events at t <= now were scheduled while the
                    # clock was strictly before t: smaller seqs, fire first
                    event = bucket.popleft()
                    if not bucket:
                        heapq.heappop(times)
                        del buckets[t]
            elif nq:
                event = nq.popleft()
            else:
                return None
            event._q = None
            if event.cancelled:
                # swept a lazily-cancelled entry (already uncounted)
                self._stale -= 1
                continue
            return event

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or None when idle."""
        nq = self._now_q
        if nq and self._now_time != self.clock.now:
            self._flush_now()
            nq = self._now_q
        while nq and nq[0].cancelled:
            nq.popleft()._q = None
            self._stale -= 1
        buckets = self._buckets
        times = self._times
        head: float | None = None
        while times:
            t = times[0]
            bucket = buckets.get(t)
            if not bucket:
                heapq.heappop(times)
                if bucket is not None:
                    del buckets[t]
                continue
            while bucket and bucket[0].cancelled:
                bucket.popleft()._q = None
                self._stale -= 1
            if not bucket:
                heapq.heappop(times)
                del buckets[t]
                continue
            head = t
            break
        if nq:
            return self._now_time if head is None or self._now_time <= head \
                else head
        return head

    def step(self) -> bool:
        """Fire the next event, advancing the clock to it.

        Returns False when no live events remain.
        """
        profiler = self.profiler
        t0 = perf_counter() if profiler is not None else 0.0
        event = self._pop_next()
        if event is None:
            return False
        self._live -= 1
        if event.time > self.clock.now:
            # advance_to lands bit-exactly on the timestamp; a
            # subtract-then-add round trip can drift an ulp
            self.clock.advance_to(event.time, event.category)
        self._fired += 1
        event.callback()
        if profiler is not None:
            profiler.add("event_loop.dispatch", t0)
        return True

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Fire events until the queue drains; returns the count fired."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"event loop exceeded {max_events} events; "
                    f"likely a rescheduling cycle")
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventLoop(now={self.clock.now:.6f}, pending={self.pending})"


class HeapEventLoop:
    """The pre-calendar-queue event loop: one binary heap of events.

    Kept verbatim as the *reference implementation* for the old-vs-new
    property tests (``tests/test_sim_events_property.py``) and as the
    baseline side of ``benchmarks/test_perf_core_throughput.py``.
    Cancellation is lazy (cancelled events rot in the heap until popped)
    and ``pending`` is an O(n) scan — exactly the costs the calendar
    queue removes.
    """

    kind = "heap"

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._fired = 0
        self.profiler = None

    def at(self, time: float, callback: Callable[[], None],
           category: str = "wait") -> Event:
        if time < self.clock.now:
            raise InvalidArgumentError(
                f"cannot schedule event in the past: {time} < "
                f"{self.clock.now}")
        event = Event(time, next(self._seq), callback, category)
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay: float, callback: Callable[[], None],
              category: str = "wait") -> Event:
        if delay < 0:
            raise InvalidArgumentError(f"negative delay: {delay}")
        return self.at(self.clock.now + delay, callback, category)

    def cancel(self, event: Event) -> None:
        event.cancelled = True

    @property
    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def fired(self) -> int:
        return self._fired

    def peek_time(self) -> float | None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        profiler = self.profiler
        t0 = perf_counter() if profiler is not None else 0.0
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time > self.clock.now:
                self.clock.advance_to(event.time, event.category)
            self._fired += 1
            event.callback()
            if profiler is not None:
                profiler.add("event_loop.dispatch", t0)
            return True
        return False

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"event loop exceeded {max_events} events; "
                    f"likely a rescheduling cycle")
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"HeapEventLoop(now={self.clock.now:.6f}, "
                f"pending={self.pending})")


EVENT_LOOP_KINDS = ("bucket", "heap")


def make_event_loop(kind: str, clock: VirtualClock):
    """Build an event loop by kind: ``bucket`` (default) or ``heap``."""
    if kind == "bucket":
        return EventLoop(clock)
    if kind == "heap":
        return HeapEventLoop(clock)
    raise InvalidArgumentError(
        f"unknown event loop kind {kind!r}; expected one of "
        f"{EVENT_LOOP_KINDS}")


class IoFuture:
    """Completion handle for one in-flight I/O request.

    Resolved exactly once, from inside an event callback.  Tasks yield the
    future to their scheduler, which parks them until resolution; waiters
    registered with :meth:`add_done_callback` run synchronously inside the
    resolving event, in registration order.
    """

    __slots__ = ("_done", "_value", "_exception", "_callbacks", "label")

    def __init__(self, label: str = "") -> None:
        self._done = False
        self._value = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["IoFuture"], None]] = []
        self.label = label

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self):
        """The completion payload; raises the stored exception if failed."""
        if not self._done:
            raise InvalidArgumentError(
                f"future {self.label!r} is not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exception if self._done else None

    def resolve(self, value=None) -> None:
        self._settle(value, None)

    def fail(self, exception: BaseException) -> None:
        self._settle(None, exception)

    def _settle(self, value, exception) -> None:
        if self._done:
            raise InvalidArgumentError(
                f"future {self.label!r} is already resolved")
        self._done = True
        self._value = value
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done_callback(self,
                          callback: Callable[["IoFuture"], None]) -> None:
        """Run ``callback(self)`` on resolution (immediately if done)."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self._done else "pending"
        return f"<IoFuture {self.label!r} {state}>"
