"""Simulation substrate: virtual time, deterministic randomness, errors.

Everything in the reproduction runs against a :class:`~repro.sim.clock.VirtualClock`
rather than wall-clock time, so experiments are deterministic, fast, and
independent of the host machine.
"""

from repro.sim.clock import VirtualClock
from repro.sim.errors import (
    SimulationError,
    BadFileDescriptorError,
    FileExistsSimError,
    FileNotFoundSimError,
    InvalidArgumentError,
    IsADirectorySimError,
    NotADirectorySimError,
    ReadOnlyFilesystemError,
)
from repro.sim.engine import IoEngine
from repro.sim.events import (
    EventLoop,
    HeapEventLoop,
    IoFuture,
    make_event_loop,
)
from repro.sim.rng import RngStreams
from repro.sim.units import (
    KB,
    MB,
    GB,
    PAGE_SIZE,
    MSEC,
    USEC,
    NSEC,
    bytes_to_pages,
    page_span,
)

__all__ = [
    "VirtualClock",
    "EventLoop",
    "HeapEventLoop",
    "make_event_loop",
    "IoFuture",
    "IoEngine",
    "RngStreams",
    "SimulationError",
    "BadFileDescriptorError",
    "FileNotFoundSimError",
    "FileExistsSimError",
    "InvalidArgumentError",
    "IsADirectorySimError",
    "NotADirectorySimError",
    "ReadOnlyFilesystemError",
    "KB",
    "MB",
    "GB",
    "PAGE_SIZE",
    "MSEC",
    "USEC",
    "NSEC",
    "bytes_to_pages",
    "page_span",
]
