"""Errno-style exception hierarchy for the simulated kernel.

Mirrors the handful of POSIX failures the paper's applications can hit when
run against the simulated syscall layer.  Each exception carries an ``errno``
name so application code can report failures the way the real utilities do.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for every error raised by the simulated storage stack."""

    errno_name = "EIO"


class FileNotFoundSimError(SimulationError):
    """Path does not resolve to a file or directory (ENOENT)."""

    errno_name = "ENOENT"


class FileExistsSimError(SimulationError):
    """Exclusive create of an existing path (EEXIST)."""

    errno_name = "EEXIST"


class NotADirectorySimError(SimulationError):
    """A non-final path component is not a directory (ENOTDIR)."""

    errno_name = "ENOTDIR"


class IsADirectorySimError(SimulationError):
    """Attempt to read/write a directory as a file (EISDIR)."""

    errno_name = "EISDIR"


class BadFileDescriptorError(SimulationError):
    """Operation on a closed or never-opened descriptor (EBADF)."""

    errno_name = "EBADF"


class InvalidArgumentError(SimulationError):
    """Invalid syscall argument, e.g. negative seek offset (EINVAL)."""

    errno_name = "EINVAL"


class ReadOnlyFilesystemError(SimulationError):
    """Write to a read-only filesystem such as ISO9660 (EROFS)."""

    errno_name = "EROFS"


class IoSimError(SimulationError):
    """A device-level I/O failure (EIO) — media error, bad block, parity
    failure.  Raised by devices under failure injection and propagated
    unchanged through the filesystem and syscall layers."""

    errno_name = "EIO"

    def __init__(self, device: str, addr: int, is_write: bool) -> None:
        op = "write to" if is_write else "read from"
        super().__init__(f"I/O error: {op} {device!r} at address {addr}")
        self.device = device
        self.addr = addr
        self.is_write = is_write


class CrossDeviceError(SimulationError):
    """Operation spanning two mounted filesystems (EXDEV)."""

    errno_name = "EXDEV"


class NoSpaceError(SimulationError):
    """Device out of capacity (ENOSPC)."""

    errno_name = "ENOSPC"
