"""Deterministic, named random-number streams.

Each stochastic component of the simulation (disk rotational position, match
placement in benchmark files, background-noise model, ...) draws from its own
named stream, derived from a single experiment seed.  Components therefore
stay statistically independent, and adding a new consumer of randomness never
perturbs the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream ``name``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """A factory of independent named :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int = 20000101) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(_derive_seed(self.root_seed, name))
            self._streams[name] = gen
        return gen

    def reseed(self, root_seed: int) -> None:
        """Discard all streams and start over from a new root seed."""
        self.root_seed = root_seed
        self._streams.clear()

    def fork(self, name: str) -> "RngStreams":
        """A new independent stream family, e.g. one per benchmark run."""
        return RngStreams(_derive_seed(self.root_seed, f"fork:{name}"))
