"""Byte, page and time unit helpers shared across the stack.

The simulated kernel uses a 4 KB page, matching the Linux 2.2 kernel the
paper modified.  All byte quantities are plain ints; all times are floats in
seconds.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Virtual-memory / buffer-cache page size (Linux 2.2 on i386 used 4 KB).
PAGE_SIZE = 4 * KB

MSEC = 1e-3
USEC = 1e-6
NSEC = 1e-9


def bytes_to_pages(nbytes: int) -> int:
    """Number of pages needed to hold ``nbytes`` (ceiling division)."""
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE


def page_span(offset: int, length: int) -> range:
    """The range of page indices touched by ``[offset, offset + length)``.

    An empty length yields an empty range.
    """
    if offset < 0 or length < 0:
        raise ValueError(f"negative offset/length: {offset}, {length}")
    if length == 0:
        return range(0)
    first = offset // PAGE_SIZE
    last = (offset + length - 1) // PAGE_SIZE
    return range(first, last + 1)


def align_down(offset: int, granularity: int = PAGE_SIZE) -> int:
    """Largest multiple of ``granularity`` that is <= ``offset``."""
    return (offset // granularity) * granularity


def align_up(offset: int, granularity: int = PAGE_SIZE) -> int:
    """Smallest multiple of ``granularity`` that is >= ``offset``."""
    return ((offset + granularity - 1) // granularity) * granularity


def human_bytes(nbytes: float) -> str:
    """Render a byte count for reports, e.g. ``64.0 MB``."""
    for unit, factor in (("GB", GB), ("MB", MB), ("KB", KB)):
        if nbytes >= factor:
            return f"{nbytes / factor:.1f} {unit}"
    return f"{nbytes:.0f} B"


def human_time(seconds: float) -> str:
    """Render a duration for reports, choosing a sensible unit."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= MSEC:
        return f"{seconds / MSEC:.2f} ms"
    if seconds >= USEC:
        return f"{seconds / USEC:.2f} us"
    return f"{seconds / NSEC:.0f} ns"
