"""Event tracing for the simulated storage stack.

A :class:`Tracer` records structured events — syscalls, page faults,
device accesses, SLED fetches — with virtual timestamps, into a bounded
ring buffer.  The kernel emits events when a tracer is attached
(:meth:`repro.kernel.kernel.Kernel.attach_tracer`); tracing is off by
default and costs nothing when disabled.

Typical uses:

* tests assert on event sequences ("the pick session touched the cache
  region before any device access");
* the examples render an ASCII timeline of where a run's time went;
* performance debugging of the simulator itself.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float          # virtual seconds
    kind: str            # "syscall" | "fault" | "device" | "ioctl" | ...
    detail: str          # e.g. "read", "disk", "FSLEDS_GET"
    duration: float = 0.0
    attrs: tuple = ()    # sorted (key, value) pairs

    def attr(self, key: str, default=None):
        for k, v in self.attrs:
            if k == key:
                return v
        return default


class Tracer:
    """Bounded ring buffer of :class:`TraceEvent`."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive: {capacity}")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, time: float, kind: str, detail: str,
             duration: float = 0.0, **attrs) -> None:
        """Record one event (oldest events drop when full)."""
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(
            time=time, kind=kind, detail=detail, duration=duration,
            attrs=tuple(sorted(attrs.items()))))

    def __len__(self) -> int:
        return len(self._events)

    def events(self, kind: str | None = None,
               detail: str | None = None,
               since: float = 0.0) -> list[TraceEvent]:
        """Events filtered by kind/detail/time."""
        return [e for e in self._events
                if (kind is None or e.kind == kind)
                and (detail is None or e.detail == detail)
                and e.time >= since]

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    # -- analysis -------------------------------------------------------

    def time_by(self, key: Callable[[TraceEvent], str],
                kind: str | None = None) -> dict[str, float]:
        """Total event duration grouped by an arbitrary key function."""
        out: dict[str, float] = {}
        for event in self.events(kind=kind):
            group = key(event)
            out[group] = out.get(group, 0.0) + event.duration
        return out

    def first(self, kind: str, detail: str | None = None) -> TraceEvent | None:
        for event in self._events:
            if event.kind == kind and (detail is None
                                       or event.detail == detail):
                return event
        return None


def render_timeline(events: Iterable[TraceEvent], width: int = 72,
                    lanes: tuple[str, ...] = ("syscall", "fault",
                                              "device")) -> str:
    """A coarse ASCII timeline: one lane per event kind, one glyph per
    time bucket that saw at least one event of that kind."""
    items = list(events)
    if not items:
        return "(no events)"
    t0 = min(e.time for e in items)
    t1 = max(e.time + e.duration for e in items)
    span = max(t1 - t0, 1e-12)
    lines = []
    for lane in lanes:
        row = [" "] * width
        for event in items:
            if event.kind != lane:
                continue
            start = int((event.time - t0) / span * (width - 1))
            end = int((event.time + event.duration - t0) / span * (width - 1))
            for i in range(start, min(width - 1, max(start, end)) + 1):
                row[i] = "#" if event.duration > 0 else "|"
        lines.append(f"{lane:>8} {''.join(row)}")
    lines.append(f"{'':>8} {'^' + ' ' * (width - 2) + '^'}")
    lines.append(f"{'':>8} {t0:<{width // 2}.4f}{t1:>{width // 2}.4f}")
    return "\n".join(lines)
