"""SLED-driven asynchronous prefetching.

The pick library (paper §4.2) *reorders* an application's reads so the
cheap bytes come first; this module goes one step further and moves the
cheap bytes **before the application asks**, using the same SLED vector as
the cost oracle.  A :class:`Prefetcher` takes an open file's vector,
ranks the non-resident spans cheapest-first, and speculatively submits
page runs through the attached :class:`~repro.sim.engine.IoEngine` — the
requests ride the same plug/merge/elevator pipeline as demand faults, so
device service overlaps the task's compute and adjacent speculation
coalesces with demand misses.

Safety valves:

* **in-flight cap** — at most ``max_inflight_bytes`` of speculation is
  outstanding; the rest of the plan trickles out as completions land;
* **cache-pressure cancellation** — when free page-cache capacity drops
  below what is in flight, the newest not-yet-dispatched speculative
  requests are withdrawn (plug or elevator cancellation; their futures
  resolve with ``None``), so speculation never evicts the working set it
  was meant to serve.

Strictly an overlay: a kernel with no prefetcher attached is bit-identical
to one that never imported this module (``kernel.prefetcher`` is a plain
attribute check on the hit path).
"""

from __future__ import annotations

from collections import deque

from repro.sim.errors import InvalidArgumentError
from repro.sim.units import MB, PAGE_SIZE, page_span


class Prefetcher:
    """Speculative SLED-guided reader over one kernel's engine."""

    def __init__(self, kernel, engine=None,
                 max_inflight_bytes: int = 2 * MB,
                 max_run_pages: int = 16) -> None:
        if engine is None:
            engine = kernel.engine
        if engine is None:
            raise InvalidArgumentError(
                "prefetching needs an attached I/O engine")
        if max_inflight_bytes < PAGE_SIZE:
            raise InvalidArgumentError(
                f"max_inflight_bytes below one page: {max_inflight_bytes}")
        if max_run_pages < 1:
            raise InvalidArgumentError(
                f"max_run_pages must be >= 1: {max_run_pages}")
        self.kernel = kernel
        self.engine = engine
        self.max_inflight_bytes = max_inflight_bytes
        self.max_run_pages = max_run_pages
        #: future -> (fs, inode, page, cluster, tenant) for submitted
        #: speculation; the tenant is captured at *plan* time (the pump
        #: runs in completion callbacks, outside any task)
        self._inflight: dict = {}
        self._inflight_bytes = 0
        self._inflight_pages: set = set()
        #: planned-but-not-submitted runs, drained under the in-flight cap
        self._plan: deque = deque()
        self._planned_pages: set = set()
        #: page key -> owning tenant for pages fetched speculatively and
        #: not yet read by anyone
        self._prefetched: dict = {}
        self._cancelling = False
        self.issued_pages = 0
        self.used_pages = 0
        self.completed_requests = 0
        self.cancelled_requests = 0
        self.failed_requests = 0
        #: per-tenant speculation accounting (empty for untenanted runs)
        self.tenant_issued_pages: dict = {}
        self.tenant_used_pages: dict = {}

    # -- lifecycle -------------------------------------------------------

    def attach(self) -> "Prefetcher":
        """Install on the kernel so cache hits report back usage."""
        self.kernel.prefetcher = self
        return self

    def detach(self) -> None:
        if self.kernel.prefetcher is self:
            self.kernel.prefetcher = None

    @property
    def inflight_bytes(self) -> int:
        return self._inflight_bytes

    @property
    def planned_runs(self) -> int:
        return len(self._plan)

    # -- the kernel's hit-path callback ----------------------------------

    def note_access(self, key) -> None:
        """A cache hit landed on ``key``; count it if we prefetched it."""
        if key in self._prefetched:
            tenant = self._prefetched.pop(key)
            self.used_pages += 1
            if tenant is not None:
                self.tenant_used_pages[tenant] = (
                    self.tenant_used_pages.get(tenant, 0) + 1)
            telemetry = self.kernel.telemetry
            if telemetry is not None:
                telemetry.on_prefetch_used()

    # -- planning --------------------------------------------------------

    def prefetch_fd(self, fd: int, budget_bytes: int | None = None) -> int:
        """Fetch ``fd``'s SLED vector (full ``FSLEDS_GET`` cost) and plan
        speculation over it; returns the bytes planned."""
        of = self.kernel._fd(fd)
        vector = self.kernel.get_sleds(fd)
        return self.prefetch_vector(of.fs, of.inode, vector, budget_bytes)

    def prefetch_vector(self, fs, inode, vector,
                        budget_bytes: int | None = None) -> int:
        """Plan speculation over a SLED vector, cheapest latency first
        (ties toward the lower offset, like the pick library); returns
        the bytes planned.  ``budget_bytes`` bounds the planning, not the
        in-flight cap."""
        remaining = budget_bytes
        planned = 0
        for sled in sorted(vector, key=lambda s: (s.latency, s.offset)):
            if remaining is not None and remaining <= 0:
                break
            length = sled.end - sled.offset
            if remaining is not None:
                length = min(length, remaining)
            got = self._plan_span(fs, inode, sled.offset, length)
            planned += got
            if remaining is not None:
                remaining -= got
        self._pump()
        return planned

    def prefetch_span(self, fs, inode, offset: int, length: int) -> int:
        """Plan speculation over one byte span (the pick session feeds
        its upcoming chunks here); returns the bytes planned."""
        planned = self._plan_span(fs, inode, offset, length)
        self._pump()
        return planned

    def _plan_span(self, fs, inode, offset: int, length: int) -> int:
        if length <= 0:
            return 0
        cache = self.kernel.page_cache
        npages = inode.npages
        # capture the owner now: planning runs inside the requesting
        # task, the pump that submits may run in a completion callback
        # where current_tenant is None — charging the speculation there
        # would leak it across tenants
        tenant = getattr(self.kernel, "current_tenant", None)
        run_start, run_len = None, 0
        planned_pages = 0

        def flush_run(start: int, count: int) -> None:
            self._plan.append((fs, inode, start, count, tenant))
            for p in range(start, start + count):
                self._planned_pages.add((inode.id, p))

        for page in page_span(offset, length):
            if page >= npages:
                break
            key = (inode.id, page)
            wanted = (not cache.peek(key)
                      and key not in self._inflight_pages
                      and key not in self._planned_pages)
            if (wanted and run_start is not None
                    and page == run_start + run_len
                    and run_len < self.max_run_pages):
                run_len += 1
            elif wanted:
                if run_start is not None:
                    flush_run(run_start, run_len)
                run_start, run_len = page, 1
            elif run_start is not None:
                flush_run(run_start, run_len)
                run_start, run_len = None, 0
            if wanted:
                planned_pages += 1
        if run_start is not None:
            flush_run(run_start, run_len)
        return planned_pages * PAGE_SIZE

    # -- submission / completion ----------------------------------------

    def _pump(self) -> None:
        """Submit planned runs up to the in-flight byte cap."""
        if self._cancelling:
            return
        cache = self.kernel.page_cache
        while self._plan and self._inflight_bytes < self.max_inflight_bytes:
            fs, inode, page, cluster, tenant = self._plan.popleft()
            keys = [(inode.id, p) for p in range(page, page + cluster)]
            for key in keys:
                self._planned_pages.discard(key)
            if all(cache.peek(key) for key in keys):
                continue  # a demand fault beat us to the whole run
            future = self.engine.submit_cluster(fs, inode, page, cluster,
                                                tenant=tenant,
                                                speculative=True)
            self._inflight[future] = (fs, inode, page, cluster, tenant)
            self._inflight_bytes += cluster * PAGE_SIZE
            self._inflight_pages.update(keys)
            self.issued_pages += cluster
            if tenant is not None:
                self.tenant_issued_pages[tenant] = (
                    self.tenant_issued_pages.get(tenant, 0) + cluster)
            telemetry = self.kernel.telemetry
            if telemetry is not None:
                telemetry.on_prefetch_issued(cluster)
            future.add_done_callback(self._on_done)

    def _on_done(self, future) -> None:
        entry = self._inflight.pop(future, None)
        if entry is None:
            return
        fs, inode, page, cluster, tenant = entry
        self._inflight_bytes -= cluster * PAGE_SIZE
        keys = [(inode.id, p) for p in range(page, page + cluster)]
        for key in keys:
            self._inflight_pages.discard(key)
        telemetry = self.kernel.telemetry
        if future.exception is not None:
            # speculation must never surface device errors to anyone;
            # the page simply stays non-resident for the demand path
            self.failed_requests += 1
        elif future.value is None:
            self.cancelled_requests += 1
            if telemetry is not None:
                telemetry.on_prefetch_cancelled()
        else:
            completion = future.value
            self.completed_requests += 1
            kernel = self.kernel
            cache = kernel.page_cache
            for key in keys:
                if not cache.peek(key):
                    if cache.insert(key, tenant) is not None:
                        kernel.counters.evictions += 1
                        kernel.counters.note_tenant_eviction(
                            cache.last_evicted_owner)
                    self._prefetched[key] = tenant
            if telemetry is not None:
                telemetry.on_prefetch_complete(fs, inode.id, page, cluster,
                                               completion, tenant=tenant)
        self._check_pressure()
        self._pump()

    def _check_pressure(self) -> None:
        """Withdraw the newest not-yet-dispatched speculation while free
        cache capacity is below what is in flight."""
        if self._cancelling:
            return
        cache = self.kernel.page_cache
        free = cache.capacity_pages - len(cache)
        inflight_pages = sum(entry[3] for entry in self._inflight.values())
        if free >= inflight_pages:
            return
        self._cancelling = True
        try:
            for future in reversed(list(self._inflight)):
                if free >= inflight_pages:
                    break
                fs, _, _, cluster, _ = self._inflight[future]
                if self.engine.cancel_request(fs.device, future):
                    # resolution with None re-enters _on_done, which
                    # pops the entry and counts the cancellation
                    inflight_pages -= cluster
        finally:
            self._cancelling = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Prefetcher inflight={self._inflight_bytes}B "
                f"plan={len(self._plan)} issued={self.issued_pages}p "
                f"used={self.used_pages}p>")
