"""Virtual time for the simulated storage stack.

All device models return durations in seconds; the kernel advances a single
:class:`VirtualClock` with those durations.  Nothing in the system reads the
host's wall clock, which makes every experiment deterministic and lets a
"two days of execution time" measurement campaign (the paper ran each point
twelve times) finish in seconds.

The clock also supports *charge categories* so experiments can decompose
elapsed time the way the paper discusses it (e.g. "the increase in execution
time for small files is all CPU time").
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ClockError(Exception):
    """Raised on invalid clock operations (e.g. negative advance)."""


@dataclass
class ClockSnapshot:
    """A point-in-time copy of the clock, used to compute interval deltas."""

    now: float
    by_category: dict[str, float] = field(default_factory=dict)


class VirtualClock:
    """A monotonically increasing virtual clock measured in seconds.

    Durations are accumulated both into the global ``now`` and into named
    categories (``"cpu"``, ``"disk"``, ``"memory"``, ...).  Categories are
    created on first use.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._by_category: dict[str, float] = {}

    @property
    def now(self) -> float:
        """Current virtual time in seconds since the simulation began."""
        return self._now

    def advance(self, seconds: float, category: str = "other") -> float:
        """Advance the clock by ``seconds``, attributed to ``category``.

        Returns the new current time.  Raises :class:`ClockError` for a
        negative duration — device models must never produce one.
        """
        if seconds < 0:
            raise ClockError(f"cannot advance clock by negative time: {seconds!r}")
        self._now += seconds
        self._by_category[category] = self._by_category.get(category, 0.0) + seconds
        return self._now

    def advance_run(self, durations, category: str = "other") -> float:
        """Advance by each duration in ``durations``, in order.

        Semantically ``for d in durations: advance(d, category)`` — the
        accumulation order (and therefore every intermediate rounding) is
        identical, so the batched fault path can charge a whole run of
        faults without diverging from the scalar path by an ulp.
        """
        now = self._now
        total = self._by_category.get(category, 0.0)
        for seconds in durations:
            if seconds < 0:
                self._now = now
                self._by_category[category] = total
                raise ClockError(
                    f"cannot advance clock by negative time: {seconds!r}")
            now += seconds
            total += seconds
        self._now = now
        self._by_category[category] = total
        return now

    def advance_to(self, time: float, category: str = "other") -> float:
        """Advance the clock to exactly ``time`` (charged to ``category``).

        The discrete-event loop uses this to land *bit-exactly* on an
        event's timestamp: ``advance(time - now)`` can round an ulp away
        from ``time``, which would break the engine's single-task
        bit-identity guarantee against the synchronous path.
        """
        if time < self._now:
            raise ClockError(
                f"cannot move clock backwards: {time!r} < {self._now!r}")
        delta = time - self._now
        self._by_category[category] = (
            self._by_category.get(category, 0.0) + delta)
        self._now = time
        return self._now

    def category_total(self, category: str) -> float:
        """Total time attributed to ``category`` so far (0.0 if never used)."""
        return self._by_category.get(category, 0.0)

    def categories(self) -> dict[str, float]:
        """A copy of the per-category accumulated time."""
        return dict(self._by_category)

    def snapshot(self) -> ClockSnapshot:
        """Capture the current state; pass to :meth:`elapsed_since`."""
        return ClockSnapshot(now=self._now, by_category=dict(self._by_category))

    def elapsed_since(self, snap: ClockSnapshot) -> float:
        """Seconds elapsed since ``snap`` was taken."""
        return self._now - snap.now

    def elapsed_by_category(self, snap: ClockSnapshot) -> dict[str, float]:
        """Per-category seconds elapsed since ``snap`` was taken.

        Categories with zero delta are omitted.
        """
        out: dict[str, float] = {}
        for cat, total in self._by_category.items():
            delta = total - snap.by_category.get(cat, 0.0)
            if delta > 0.0:
                out[cat] = delta
        return out

    def reset(self) -> None:
        """Reset the clock to zero and clear all category accumulators."""
        self._now = 0.0
        self._by_category.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.6f})"
