"""The I/O engine: per-device queues wired to one kernel and event loop.

An :class:`IoEngine` is what turns the kernel's blocking time model into a
discrete-event one.  While attached (``kernel.engine is self``):

* hard faults taken through the kernel's ``*_async`` syscalls are
  *submitted* to a per-device :class:`~repro.block.scheduler.DeviceQueue`
  (online elevator, live head position) and the faulting task blocks on
  the returned future while other runnable tasks execute — CPU overlaps
  device service, and requests from different tasks contend for the same
  device queue;
* SLED vectors served by ``FSLEDS_GET`` gain a queue-delay latency term
  fed by each device's busy horizon and queue depth, and the kernel's
  SLED cache stamp folds in each queue's congestion epoch so queue churn
  invalidates cached estimates;
* queue depth and per-request queue wait are exported through the
  telemetry gauges when a :class:`~repro.obs.telemetry.Telemetry` is
  attached.

Detached (the default), nothing here runs and the kernel's synchronous
path is bit-identical to the pre-engine substrate — the paper figures are
regression anchors and must not move.

Service runs through the filesystem's own ``read_pages`` at *dispatch*
time (as a thunk), so stateful read paths — HSM staging, NFS server
caches, zone-dependent disk transfer — mutate their state and draw their
randomness in exactly the order the synchronous path would have, which is
what makes a solo run under the engine bit-identical to the blocking one.
"""

from __future__ import annotations

from repro.block.merge import BlockConfig, PlugQueue
from repro.block.scheduler import DeviceQueue, IoScheduler
from repro.sim.errors import InvalidArgumentError
from repro.sim.events import IoFuture, make_event_loop
from repro.sim.units import PAGE_SIZE


class IoEngine:
    """Per-device event-driven request queues over one kernel."""

    def __init__(self, kernel, scheduler: IoScheduler | None = None,
                 block: BlockConfig | None = None) -> None:
        self.kernel = kernel
        self.loop = make_event_loop(
            getattr(kernel, "event_loop_kind", "bucket"), kernel.clock)
        self.scheduler = scheduler if scheduler is not None \
            else kernel.io_scheduler
        #: block-layer front-end config; None (or an all-off config)
        #: routes fault clusters straight to the device queues
        self.block = block
        self._queues: dict[int, DeviceQueue] = {}
        self._plugs: dict[int, PlugQueue] = {}
        self._attached = False

    @property
    def block_active(self) -> bool:
        """Whether fault submissions go through the merge/plug stage."""
        return self.block is not None and self.block.active

    # -- lifecycle -------------------------------------------------------

    def attach(self) -> "IoEngine":
        """Install on the kernel; clamps stale device busy horizons
        (boot-time probes run devices off-clock) to the current time."""
        if self.kernel.engine is not None:
            raise InvalidArgumentError(
                "kernel already has an engine attached")
        now = self.kernel.clock.now
        seen: set[int] = set()
        for device in self._reachable_devices():
            if id(device) not in seen:
                seen.add(id(device))
                device.clamp_horizon(now)
        self.kernel.engine = self
        if getattr(self.kernel, "profiler", None) is not None:
            self.loop.profiler = self.kernel.profiler
        self._attached = True
        return self

    def detach(self) -> None:
        if self.kernel.engine is self:
            self.kernel.engine = None
        self._attached = False

    def _reachable_devices(self):
        yield self.kernel.memory
        for _, fs in self.kernel.mounts():
            yield from fs.observable_devices()

    # -- queues ----------------------------------------------------------

    def queue_for(self, device) -> DeviceQueue:
        """The (lazily created) online elevator for ``device``."""
        queue = self._queues.get(id(device))
        if queue is None:
            queue = DeviceQueue(device, self.loop, self.scheduler)
            queue.on_queued = (
                lambda depth, d=device: self._on_queued(d, depth))
            queue.on_dispatched = (
                lambda wait, depth, d=device:
                self._on_dispatched(d, wait, depth))
            queue.on_completed = (
                lambda depth, d=device: self._on_completed(d, depth))
            self._queues[id(device)] = queue
        return queue

    def queues(self) -> list[DeviceQueue]:
        """Every queue created so far (reporting / tests)."""
        return list(self._queues.values())

    def submit(self, device, addr: int, nbytes: int, is_write: bool,
               service=None, label: str = "") -> IoFuture:
        """Enqueue one raw request on ``device``'s queue."""
        return self.queue_for(device).submit(addr, nbytes, is_write,
                                             service=service, label=label)

    def plug_for(self, device) -> PlugQueue:
        """The (lazily created) merge/plug stage for ``device``."""
        plug = self._plugs.get(id(device))
        if plug is None:
            plug = PlugQueue(device, self.queue_for(device), self.loop,
                             self.block, self._fault_service)
            plug.on_merge = (
                lambda members, nbytes, d=device:
                self._on_merge(d, members, nbytes))
            plug.on_plug = (
                lambda wait, batch, d=device:
                self._on_plug(d, wait, batch))
            self._plugs[id(device)] = plug
        return plug

    def plugs(self) -> list[PlugQueue]:
        """Every plug created so far (reporting / tests)."""
        return list(self._plugs.values())

    _CURRENT_TENANT = object()  # sentinel: "whoever is faulting now"

    def submit_cluster(self, fs, inode, page: int, cluster: int,
                       tenant=_CURRENT_TENANT,
                       speculative: bool = False) -> IoFuture:
        """Enqueue one fault cluster, serviced through ``fs.read_pages``
        at dispatch time (noise applied as the synchronous path would).

        With an active block config, the cluster goes through the
        device's merge/plug stage instead of straight to the elevator.
        ``tenant`` defaults to the kernel's current tenant; callers that
        submit on another task's behalf (the prefetcher, whose pump runs
        in completion callbacks) pass the owning tenant explicitly.
        ``speculative`` marks prefetcher-issued clusters in the dispatch
        history so blame attribution can name prefetch interference."""
        if tenant is IoEngine._CURRENT_TENANT:
            tenant = getattr(self.kernel, "current_tenant", None)
        if self.block_active:
            return self.plug_for(fs.device).submit(fs, inode, page, cluster,
                                                   tenant=tenant,
                                                   speculative=speculative)
        addr = inode.extent_map.addr_of(page)
        service = self._fault_service(fs, inode, page, cluster, False)
        return self.queue_for(fs.device).submit(
            addr, cluster * PAGE_SIZE, is_write=False, service=service,
            label=f"fault:{fs.name}:{inode.id}:{page}+{cluster}",
            tenant=tenant, kind="prefetch" if speculative else "fault")

    def _fault_service(self, fs, inode, page: int, cluster: int,
                       merged: bool):
        """Dispatch-time service thunk for one fault (or merged union):
        the filesystem read path wrapped in the kernel's noise + lifecycle
        component tracing."""
        if merged:
            raw = lambda: fs.read_pages_merged(inode, page, cluster)  # noqa: E731
        else:
            raw = lambda: fs.read_pages(inode, page, cluster)  # noqa: E731
        return self.kernel._traced_service(
            fs, ("fault", inode.id, page, cluster), raw)

    def cancel_request(self, device, future: IoFuture) -> bool:
        """Withdraw a not-yet-dispatched request from ``device``'s plug
        or elevator; the future resolves with ``None`` on success."""
        plug = self._plugs.get(id(device))
        if plug is not None and plug.cancel(future):
            return True
        queue = self._queues.get(id(device))
        return queue.cancel(future) if queue is not None else False

    # -- queue-aware SLED inputs ----------------------------------------

    def queue_delays(self, fs, now: float,
                     tenant: str | None = None) -> dict[str, float]:
        """Per-device-key extra latency from queue state right now —
        the term ``FSLEDS_GET`` adds to non-resident SLED latencies.
        ``tenant`` scopes the estimate under tenant-aware schedulers."""
        delays: dict[str, float] = {}
        for key, device in fs.device_table().items():
            delay = self.queue_for(device).estimated_delay(now, tenant)
            plug = self._plugs.get(id(device))
            if plug is not None:
                delay += plug.estimated_delay()
            delay = max(delay, device.queue_delay(now))
            if delay > 0.0:
                delays[key] = delay
        return delays

    def congestion_stamp(self, fs) -> tuple:
        """Per-device congestion epochs, folded into the SLED cache stamp
        so any queue-state change invalidates cached vectors."""
        return tuple(self.queue_for(device).congestion_epoch
                     for _, device in sorted(fs.device_table().items()))

    # -- forensic provenance ---------------------------------------------

    def dispatch_histories(self) -> dict[str, tuple]:
        """Per device name: the bounded dispatch-history ring (see
        :meth:`~repro.block.scheduler.DeviceQueue.recent_dispatches`) —
        the raw material the blame engine reconstructs queue-wait
        occupancy from."""
        return {queue.device.name: queue.recent_dispatches()
                for queue in self._queues.values()}

    def hold_histories(self) -> dict[tuple, object]:
        """Plug hold-time provenance across every plug stage, keyed by
        ``(fs, inode, page, cluster, submit_time)`` — the identity of
        the lifecycle record the released request produced."""
        holds: dict[tuple, object] = {}
        for plug in self._plugs.values():
            for hold in plug.recent_dispatched_holds():
                holds[hold.key] = hold
        return holds

    # -- observability ---------------------------------------------------

    def _on_queued(self, device, depth: int) -> None:
        telemetry = self.kernel.telemetry
        if telemetry is not None:
            telemetry.on_io_queued(device, depth)

    def _on_dispatched(self, device, wait: float, depth: int) -> None:
        telemetry = self.kernel.telemetry
        if telemetry is not None:
            telemetry.on_io_dispatched(device, wait, depth)

    def _on_completed(self, device, depth: int) -> None:
        telemetry = self.kernel.telemetry
        if telemetry is not None:
            telemetry.on_io_completed(device, depth)

    def _on_merge(self, device, members: int, nbytes: int) -> None:
        telemetry = self.kernel.telemetry
        if telemetry is not None:
            telemetry.on_merge(device, members, nbytes)

    def _on_plug(self, device, wait: float, batch: int) -> None:
        telemetry = self.kernel.telemetry
        if telemetry is not None:
            telemetry.on_plug(device, wait, batch)

    def queue_report(self) -> dict[str, dict]:
        """Summary per device queue (benchmarks and examples print this).

        Merge/plug keys appear only for devices that actually have a plug
        stage, so reports from engines without a block front keep their
        exact historical shape."""
        report: dict[str, dict] = {}
        for queue in self._queues.values():
            report[queue.device.name] = {
                "dispatched": queue.dispatched,
                "depth_high_water": queue.depth_high_water,
                "total_queue_wait_s": queue.total_queue_wait,
                "congestion_epoch": queue.congestion_epoch,
            }
        for plug in self._plugs.values():
            report[plug.device.name].update({
                "merged_requests": plug.merged_requests,
                "merged_bytes": plug.merged_bytes,
                "plug_flushes": plug.flushes,
                "plug_wait_s": plug.plug_wait_total,
            })
        return report

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "attached" if self._attached else "detached"
        return f"<IoEngine {state} queues={len(self._queues)}>"
