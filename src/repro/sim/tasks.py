"""Cooperative multiprogramming over the simulated kernel.

The paper argues SLEDs make an application "a better citizen by reducing
system load" — a claim about *concurrent* workloads sharing the cache and
devices.  This module provides the minimal machinery to run several
application loops interleaved against one kernel:

* a :class:`Task` wraps a generator that yields between I/O steps;
* :class:`RoundRobin` alternates tasks, accounting each task's virtual
  time and faults separately (the kernel clock advances only inside the
  running task's step, so per-task deltas are exact);
* :func:`wc_task` / :func:`grep_task` / :func:`reader_task` adapt the
  standard applications into steppable generators.

This is cooperative, deterministic scheduling — not preemption — which is
all the cache-interference phenomena need: what matters is that task A's
insertions land between task B's reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Iterator

from repro.sim.errors import InvalidArgumentError

#: what task generators yield between steps (value is ignored)
Step = Generator[None, None, object]


@dataclass
class TaskStats:
    """Per-task accounting, filled in by the scheduler."""

    steps: int = 0
    virtual_time: float = 0.0
    hard_faults: int = 0
    finished_at: float | None = None  # scheduler virtual time at finish
    result: object = None


class Task:
    """One cooperative task: a generator plus its accounting."""

    def __init__(self, name: str, step_gen: Step) -> None:
        self.name = name
        self._gen = step_gen
        self.stats = TaskStats()
        self.done = False

    def step(self, kernel) -> bool:
        """Run one step; returns True while the task has more work."""
        if self.done:
            return False
        clock_before = kernel.clock.now
        faults_before = kernel.counters.hard_faults
        try:
            next(self._gen)
        except StopIteration as stop:
            self.stats.result = stop.value
            self.done = True
        self.stats.steps += 1
        self.stats.virtual_time += kernel.clock.now - clock_before
        self.stats.hard_faults += (kernel.counters.hard_faults
                                   - faults_before)
        return not self.done


class RoundRobin:
    """Deterministic round-robin scheduler over one kernel."""

    def __init__(self, kernel, tasks: list[Task]) -> None:
        if not tasks:
            raise InvalidArgumentError("need at least one task")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise InvalidArgumentError(f"duplicate task names: {names}")
        self.kernel = kernel
        self.tasks = list(tasks)

    def run(self, max_rounds: int = 1_000_000) -> dict[str, TaskStats]:
        """Interleave all tasks to completion; returns stats by name."""
        start = self.kernel.clock.now
        pending = list(self.tasks)
        rounds = 0
        while pending:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError(
                    f"round-robin exceeded {max_rounds} rounds; "
                    f"still pending: {[t.name for t in pending]}")
            still = []
            for task in pending:
                if task.step(self.kernel):
                    still.append(task)
                else:
                    task.stats.finished_at = self.kernel.clock.now - start
            pending = still
        return {task.name: task.stats for task in self.tasks}


# ---------------------------------------------------------------------------
# application adapters
# ---------------------------------------------------------------------------

def reader_task(kernel, path: str, bufsize: int = 64 * 1024) -> Step:
    """A plain linear reader (the classic cache-hostile scan)."""
    fd = kernel.open(path)
    try:
        while True:
            data = kernel.read(fd, bufsize)
            if not data:
                return None
            yield
    finally:
        kernel.close(fd)


def wc_task(kernel, path: str, use_sleds: bool = False,
            bufsize: int = 64 * 1024) -> Step:
    """wc as a cooperative task; returns the (lines, words, chars) tuple."""
    from repro.apps.common import (
        SCAN_CPU_PER_BYTE,
        SLEDS_EXTRA_CPU_PER_BYTE,
        read_linear,
        read_sleds_order,
    )

    fd = kernel.open(path)
    try:
        lines = words = chars = 0
        prev_in_word = False
        reader = (read_sleds_order(kernel, fd, bufsize) if use_sleds
                  else read_linear(kernel, fd, bufsize))
        tax = SLEDS_EXTRA_CPU_PER_BYTE if use_sleds else 0.0
        edges = []
        for offset, data in reader:
            kernel.charge_cpu(len(data) * (SCAN_CPU_PER_BYTE + tax))
            lines += data.count(b"\n")
            words += len(data.split())
            chars += len(data)
            if data:
                edges.append((offset, offset + len(data),
                              data[:1] not in b" \t\n\r\v\f",
                              data[-1:] not in b" \t\n\r\v\f"))
            yield
        edges.sort()
        for (_, prev_end, _, prev_ends), (start, _, starts, _) in zip(
                edges, edges[1:]):
            if prev_end == start and prev_ends and starts:
                words -= 1
        return (lines, words, chars)
    finally:
        kernel.close(fd)


def grep_task(kernel, path: str, pattern: bytes,
              use_sleds: bool = False,
              bufsize: int = 64 * 1024) -> Step:
    """First-match grep as a cooperative task; returns the match offset
    or None."""
    from repro.apps.common import read_linear, read_sleds_order

    fd = kernel.open(path)
    try:
        reader = (read_sleds_order(kernel, fd, bufsize, record_mode=True)
                  if use_sleds else read_linear(kernel, fd, bufsize))
        carry = b""
        carry_end: int | None = None
        overlap = max(0, len(pattern) - 1)
        for offset, data in reader:
            if carry_end == offset:
                blob, base = carry + data, offset - len(carry)
            else:
                blob, base = data, offset
            index = blob.find(pattern)
            if index >= 0:
                return base + index
            carry = blob[-overlap:] if overlap else b""
            carry_end = base + len(blob)
            yield
        return None
    finally:
        kernel.close(fd)


def make_task(name: str, factory: Callable[[], Step]) -> Task:
    """Convenience: build a named Task from a generator factory."""
    return Task(name, factory())
