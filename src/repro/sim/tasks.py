"""Cooperative multiprogramming over the simulated kernel.

The paper argues SLEDs make an application "a better citizen by reducing
system load" — a claim about *concurrent* workloads sharing the cache and
devices.  This module provides the machinery to run several application
loops interleaved against one kernel:

* a :class:`Task` wraps a generator that yields between I/O steps;
* :class:`EventScheduler` is the discrete-event scheduler: tasks that
  yield an :class:`~repro.sim.events.IoFuture` block until the device
  completes, while runnable tasks execute during the device service —
  CPU overlaps I/O, and per-device queues (see :mod:`repro.sim.engine`)
  order contending requests with an online elevator;
* :class:`RoundRobin` is the original lockstep scheduler, kept as a
  compatibility shim (it never overlaps anything: every kernel call
  blocks inline, exactly the pre-engine behaviour);
* :func:`wc_task` / :func:`grep_task` / :func:`reader_task` adapt the
  standard applications into steppable generators;
  :func:`reader_task_async` / :func:`wc_task_async` are their
  engine-aware forms that block on completions instead of the clock.

Scheduling is cooperative and deterministic — runnable tasks run FIFO,
blocked tasks wake in event order (time, then submission sequence) — so
two runs of the same workload are bit-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Generator, Iterator

from repro.sim.errors import InvalidArgumentError

#: what task generators yield between steps: None (cooperative yield) or
#: an IoFuture / list of IoFutures to block on
Step = Generator[object, object, object]

#: sentinel distinguishing "task finished" from any yielded value
_DONE = object()


@dataclass
class TaskStats:
    """Per-task accounting, filled in by the scheduler.

    ``finished_at`` is the *absolute* scheduler virtual time at which the
    task completed (directly comparable to ``kernel.clock.now``);
    ``elapsed`` is the relative form — seconds from scheduler start to
    finish.  ``virtual_time`` counts only time that advanced while this
    task was executing (its CPU, memory and blocking I/O charges);
    ``wait_time`` counts time the task spent parked on completions while
    other tasks ran or the clock jumped to a device completion.
    """

    steps: int = 0
    virtual_time: float = 0.0
    hard_faults: int = 0
    started_at: float | None = None  # absolute virtual time of first step
    finished_at: float | None = None  # absolute virtual time at finish
    elapsed: float | None = None  # finished_at minus scheduler start
    wait_time: float = 0.0  # time spent blocked on I/O completions
    io_waits: int = 0  # completions this task blocked on
    result: object = None
    tenant: str | None = None  # owning tenant (QoS / accounting identity)


class Task:
    """One cooperative task: a generator plus its accounting.

    ``tenant`` names the QoS/accounting identity the task runs under;
    while the task executes, the kernel's ``current_tenant`` is set so
    faults, cache insertions, and block requests are attributed to it.
    Untenanted tasks (the default) leave every tenant path dormant.
    """

    def __init__(self, name: str, step_gen: Step,
                 tenant: str | None = None) -> None:
        self.name = name
        self._gen = step_gen
        self.tenant = tenant
        self.stats = TaskStats(tenant=tenant)
        self.done = False

    def step(self, kernel) -> bool:
        """Run one step; returns True while the task has more work.

        The lockstep entry point used by :class:`RoundRobin`: any yielded
        value is ignored, so tasks that yield futures must run under
        :class:`EventScheduler` instead.
        """
        return self.resume(kernel) is not _DONE

    def resume(self, kernel, value: object = None,
               exception: BaseException | None = None) -> object:
        """Advance the generator one step and account the slice.

        ``value`` is sent into the generator (the completion a blocked
        task was waiting for); ``exception`` is thrown into it instead
        (failed I/O).  Returns whatever the generator yields, or the
        ``_DONE`` sentinel once it finishes.
        """
        if self.done:
            return _DONE
        if self.stats.started_at is None:
            self.stats.started_at = kernel.clock.now
        clock_before = kernel.clock.now
        faults_before = kernel.counters.hard_faults
        # attribution for observability (lifecycle records name the task
        # whose slice issued each request); never read by the time model
        previous_task = getattr(kernel, "current_task", None)
        previous_tenant = getattr(kernel, "current_tenant", None)
        kernel.current_task = self.name
        kernel.current_tenant = self.tenant
        try:
            if exception is not None:
                yielded = self._gen.throw(exception)
            else:
                yielded = self._gen.send(value)
        except StopIteration as stop:
            self.stats.result = stop.value
            self.done = True
            yielded = _DONE
        finally:
            kernel.current_task = previous_task
            kernel.current_tenant = previous_tenant
            self.stats.steps += 1
            self.stats.virtual_time += kernel.clock.now - clock_before
            self.stats.hard_faults += (kernel.counters.hard_faults
                                       - faults_before)
        return yielded


class RoundRobin:
    """Deterministic lockstep round-robin scheduler over one kernel.

    Compatibility shim: every kernel call a task makes blocks inline
    (device time is charged synchronously), so nothing overlaps — the
    pre-event-engine behaviour.  Use :class:`EventScheduler` with the
    ``*_async`` task adapters to overlap CPU with device service.
    """

    def __init__(self, kernel, tasks: list[Task]) -> None:
        if not tasks:
            raise InvalidArgumentError("need at least one task")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise InvalidArgumentError(f"duplicate task names: {names}")
        self.kernel = kernel
        self.tasks = list(tasks)

    def run(self, max_rounds: int = 1_000_000) -> dict[str, TaskStats]:
        """Interleave all tasks to completion; returns stats by name."""
        start = self.kernel.clock.now
        pending = list(self.tasks)
        rounds = 0
        while pending:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError(
                    f"round-robin exceeded {max_rounds} rounds; "
                    f"still pending: {[t.name for t in pending]}")
            still = []
            for task in pending:
                if task.step(self.kernel):
                    still.append(task)
                else:
                    task.stats.finished_at = self.kernel.clock.now
                    task.stats.elapsed = self.kernel.clock.now - start
            pending = still
        return {task.name: task.stats for task in self.tasks}


class EventScheduler:
    """Discrete-event task scheduler: CPU overlaps device service.

    Tasks are the same generators :class:`RoundRobin` runs, with one
    extension: yielding an :class:`~repro.sim.events.IoFuture` (or a list
    of them) parks the task until the I/O completes.  While a task is
    parked, other runnable tasks execute — their CPU and cache hits
    advance the clock during the blocked task's device service.  When
    every task is parked, the event loop jumps the clock to the earliest
    completion (charged to that device's category, so a solo run's
    per-category totals match the synchronous path bit for bit).

    Determinism: runnable tasks run FIFO; completions fire in event order
    (time, then submission sequence); a task woken by a completion goes to
    the back of the runnable queue.  No wall clock, no hashing, no
    randomness — identical workloads replay identically.
    """

    def __init__(self, kernel, tasks: list[Task],
                 engine=None) -> None:
        if not tasks:
            raise InvalidArgumentError("need at least one task")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise InvalidArgumentError(f"duplicate task names: {names}")
        self.kernel = kernel
        self.tasks = list(tasks)
        self.engine = engine

    def run(self, max_steps: int = 10_000_000) -> dict[str, TaskStats]:
        """Run all tasks to completion; returns stats by name."""
        from repro.sim.engine import IoEngine
        from repro.sim.events import IoFuture

        kernel = self.kernel
        engine = self.engine
        owns_engine = False
        if engine is None:
            engine = kernel.engine
            if engine is None:
                engine = IoEngine(kernel).attach()
                owns_engine = True
        elif kernel.engine is None:
            engine.attach()
            owns_engine = True

        start = kernel.clock.now
        runnable: deque[tuple[Task, object, BaseException | None]] = deque(
            (task, None, None) for task in self.tasks)
        counters = {"blocked": 0}
        steps = 0

        def park(task: Task, futures: list) -> None:
            """Wake ``task`` once every future resolves; deliver the last
            completion (or the first exception) back into the generator."""
            state = {"remaining": len(futures), "exc": None, "value": None,
                     "blocked_at": kernel.clock.now}
            counters["blocked"] += 1
            task.stats.io_waits += len(futures)

            def settle(future) -> None:
                state["remaining"] -= 1
                if future.exception is not None and state["exc"] is None:
                    state["exc"] = future.exception
                elif future.exception is None:
                    state["value"] = future.value
                if state["remaining"] == 0:
                    task.stats.wait_time += (kernel.clock.now
                                             - state["blocked_at"])
                    counters["blocked"] -= 1
                    runnable.append((task, state["value"], state["exc"]))

            for future in futures:
                future.add_done_callback(settle)

        try:
            while runnable or counters["blocked"]:
                steps += 1
                if steps > max_steps:
                    raise RuntimeError(
                        f"event scheduler exceeded {max_steps} steps")
                if not runnable:
                    if not engine.loop.step():
                        parked = [t.name for t in self.tasks if not t.done]
                        raise RuntimeError(
                            f"deadlock: tasks {parked} blocked with no "
                            f"pending events")
                    continue
                task, value, exception = runnable.popleft()
                yielded = task.resume(kernel, value, exception)
                if yielded is _DONE:
                    task.stats.finished_at = kernel.clock.now
                    task.stats.elapsed = kernel.clock.now - start
                    continue
                if yielded is None:
                    runnable.append((task, None, None))
                    continue
                futures = (list(yielded)
                           if isinstance(yielded, (list, tuple))
                           else [yielded])
                if not all(isinstance(f, IoFuture) for f in futures):
                    raise InvalidArgumentError(
                        f"task {task.name!r} yielded "
                        f"{yielded!r}; expected None or IoFuture(s)")
                park(task, futures)
            return {task.name: task.stats for task in self.tasks}
        finally:
            if owns_engine:
                engine.detach()

    @property
    def _blocked(self) -> int:
        return self.__dict__.get("_blocked_count", 0)

    @_blocked.setter
    def _blocked(self, value: int) -> None:
        self.__dict__["_blocked_count"] = value


# ---------------------------------------------------------------------------
# application adapters
# ---------------------------------------------------------------------------

def reader_task(kernel, path: str, bufsize: int = 64 * 1024) -> Step:
    """A plain linear reader (the classic cache-hostile scan)."""
    fd = kernel.open(path)
    try:
        while True:
            data = kernel.read(fd, bufsize)
            if not data:
                return None
            yield
    finally:
        kernel.close(fd)


def wc_task(kernel, path: str, use_sleds: bool = False,
            bufsize: int = 64 * 1024) -> Step:
    """wc as a cooperative task; returns the (lines, words, chars) tuple."""
    from repro.apps.common import (
        SCAN_CPU_PER_BYTE,
        SLEDS_EXTRA_CPU_PER_BYTE,
        read_linear,
        read_sleds_order,
    )

    fd = kernel.open(path)
    try:
        lines = words = chars = 0
        prev_in_word = False
        reader = (read_sleds_order(kernel, fd, bufsize) if use_sleds
                  else read_linear(kernel, fd, bufsize))
        tax = SLEDS_EXTRA_CPU_PER_BYTE if use_sleds else 0.0
        edges = []
        for offset, data in reader:
            kernel.charge_cpu(len(data) * (SCAN_CPU_PER_BYTE + tax))
            lines += data.count(b"\n")
            words += len(data.split())
            chars += len(data)
            if data:
                edges.append((offset, offset + len(data),
                              data[:1] not in b" \t\n\r\v\f",
                              data[-1:] not in b" \t\n\r\v\f"))
            yield
        edges.sort()
        for (_, prev_end, _, prev_ends), (start, _, starts, _) in zip(
                edges, edges[1:]):
            if prev_end == start and prev_ends and starts:
                words -= 1
        return (lines, words, chars)
    finally:
        kernel.close(fd)


def grep_task(kernel, path: str, pattern: bytes,
              use_sleds: bool = False,
              bufsize: int = 64 * 1024) -> Step:
    """First-match grep as a cooperative task; returns the match offset
    or None."""
    from repro.apps.common import read_linear, read_sleds_order

    fd = kernel.open(path)
    try:
        reader = (read_sleds_order(kernel, fd, bufsize, record_mode=True)
                  if use_sleds else read_linear(kernel, fd, bufsize))
        carry = b""
        carry_end: int | None = None
        overlap = max(0, len(pattern) - 1)
        for offset, data in reader:
            if carry_end == offset:
                blob, base = carry + data, offset - len(carry)
            else:
                blob, base = data, offset
            index = blob.find(pattern)
            if index >= 0:
                return base + index
            carry = blob[-overlap:] if overlap else b""
            carry_end = base + len(blob)
            yield
        return None
    finally:
        kernel.close(fd)


def reader_task_async(kernel, path: str, bufsize: int = 64 * 1024,
                      cpu_per_byte: float = 0.0) -> Step:
    """Engine-aware linear reader: faults block on device completions
    (so other tasks run during the seek) instead of charging the clock
    inline.  ``cpu_per_byte`` charges per-byte CPU after each buffer —
    that CPU is what overlaps other tasks' device service."""
    fd = kernel.open(path)
    try:
        while True:
            data = yield from kernel.read_async(fd, bufsize)
            if not data:
                return None
            if cpu_per_byte:
                kernel.charge_cpu(len(data) * cpu_per_byte)
            yield
    finally:
        kernel.close(fd)


def wc_task_async(kernel, path: str, bufsize: int = 64 * 1024) -> Step:
    """Linear wc over the async read path; returns (lines, words, chars).

    Counting CPU is charged after each buffer arrives, so under the
    :class:`EventScheduler` one task's counting overlaps another task's
    device service."""
    from repro.apps.common import SCAN_CPU_PER_BYTE

    fd = kernel.open(path)
    try:
        lines = words = chars = 0
        pending = False  # last chunk ended mid-word
        while True:
            data = yield from kernel.read_async(fd, bufsize)
            if not data:
                return (lines, words, chars)
            kernel.charge_cpu(len(data) * SCAN_CPU_PER_BYTE)
            lines += data.count(b"\n")
            pieces = len(data.split())
            words += pieces
            if (pending and pieces
                    and data[:1] not in b" \t\n\r\v\f"):
                words -= 1  # continuation of the previous chunk's word
            pending = bool(pieces) and data[-1:] not in b" \t\n\r\v\f"
            chars += len(data)
            yield
    finally:
        kernel.close(fd)


def make_task(name: str, factory: Callable[[], Step]) -> Task:
    """Convenience: build a named Task from a generator factory."""
    return Task(name, factory())
