"""Per-inode residency indexes: interval runs, bitmaps, and plain sets.

The page cache tracks which ``(inode, page)`` keys are resident in a flat
set (O(1) membership on the fault path), plus a *per-inode index* that
answers the SLED builder's questions: which pages of this inode are
resident, as a bitmap, as a count, or — the shape the interval-merge
builder actually wants — as sorted ``[start, end)`` runs.

This module makes that index pluggable:

* :class:`RunResidency` (default, kind ``"runs"``) stores each inode's
  resident pages as sorted interval runs in a flat boundary list
  ``[s0, e0, s1, e1, ...]``.  Point updates are a ``bisect`` plus an O(1)
  boundary tweak in the common sequential case; ``runs``/``count``/
  ``bitmap`` queries are O(runs), not O(pages) — a million-page resident
  file is *one* run.
* :class:`BitmapResidency` (kind ``"bitmap"``) keeps a numpy boolean
  array per inode and derives runs by vectorised edge detection; point
  updates are O(1) array stores.  Opt-in via
  :class:`~repro.machine.MachineConfig` — results are bit-identical, only
  the host arithmetic differs.
* :class:`SetResidency` (kind ``"sets"``) is the pre-calendar-queue
  reference — a ``set[int]`` per inode with sort-on-demand runs — kept
  for the old-vs-new property tests and benchmark baselines.

All three expose the same small surface and, by construction, identical
query results; ``tests/test_cache_residency.py`` property-tests that.
Iteration orders handed back to the cache (``pop_inode``) are ascending
for every backend so observer callbacks fire in a deterministic order.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator

try:  # numpy ships with the devices layer's dependencies; gate anyway
    import numpy as _np
except Exception:  # pragma: no cover - numpy is present in CI
    _np = None

_EMPTY_PAGES: frozenset[int] = frozenset()

RESIDENCY_KINDS = ("runs", "bitmap", "sets")


def make_residency(kind: str):
    """Build a residency index by kind: ``runs`` (default), ``bitmap``,
    or ``sets`` (the pre-PR reference)."""
    if kind == "runs":
        return RunResidency()
    if kind == "bitmap":
        if _np is None:  # pragma: no cover - numpy is present in CI
            raise RuntimeError(
                "residency kind 'bitmap' requires numpy; use 'runs'")
        return BitmapResidency()
    if kind == "sets":
        return SetResidency()
    raise ValueError(
        f"unknown residency kind {kind!r}; expected one of "
        f"{RESIDENCY_KINDS}")


class RunResidency:
    """Sorted interval runs per inode, as a flat boundary list.

    ``_bounds[inode]`` is ``[s0, e0, s1, e1, ...]`` with
    ``s0 < e0 < s1 < e1 < ...``; page ``p`` is resident iff
    ``bisect_right(bounds, p)`` is odd.  Adding or discarding a page
    touches at most two boundaries; appending to the trailing run (the
    sequential-read common case) is a single list-element bump.
    """

    kind = "runs"

    def __init__(self) -> None:
        self._bounds: dict[int, list[int]] = {}
        self._counts: dict[int, int] = {}

    def add(self, inode_id: int, page: int) -> None:
        """Mark ``page`` resident (caller guarantees it was not)."""
        bounds = self._bounds.get(inode_id)
        if bounds is None:
            self._bounds[inode_id] = [page, page + 1]
            self._counts[inode_id] = 1
            return
        self._counts[inode_id] += 1
        if bounds[-1] == page:  # extend the trailing run: sequential reads
            bounds[-1] = page + 1
            return
        i = bisect_right(bounds, page)
        joins_prev = i > 0 and bounds[i - 1] == page
        joins_next = i < len(bounds) and bounds[i] == page + 1
        if joins_prev and joins_next:
            del bounds[i - 1:i + 1]  # bridge the gap between two runs
        elif joins_prev:
            bounds[i - 1] = page + 1
        elif joins_next:
            bounds[i] = page
        else:
            bounds[i:i] = (page, page + 1)

    def add_run(self, inode_id: int, start: int, n: int) -> None:
        """Mark the contiguous run ``[start, start+n)`` resident (caller
        guarantees none of it was).

        Equivalent to ``n`` :meth:`add` calls but a single splice: with no
        resident page inside the range, the whole run lies in one gap of
        the boundary list.
        """
        end = start + n
        bounds = self._bounds.get(inode_id)
        if bounds is None:
            self._bounds[inode_id] = [start, end]
            self._counts[inode_id] = n
            return
        self._counts[inode_id] += n
        if bounds[-1] == start:  # extend the trailing run: sequential reads
            bounds[-1] = end
            return
        i = bisect_right(bounds, start)
        joins_prev = i > 0 and bounds[i - 1] == start
        joins_next = i < len(bounds) and bounds[i] == end
        if joins_prev and joins_next:
            del bounds[i - 1:i + 1]  # bridge the gap between two runs
        elif joins_prev:
            bounds[i - 1] = end
        elif joins_next:
            bounds[i] = start
        else:
            bounds[i:i] = (start, end)

    def discard_run(self, inode_id: int, start: int, n: int) -> None:
        """Mark the contiguous run ``[start, start+n)`` non-resident
        (caller guarantees all of it was).

        Equivalent to ``n`` :meth:`discard` calls but a single trim or
        split: a fully resident contiguous range lies inside one maximal
        run of the boundary list.
        """
        count = self._counts[inode_id] - n
        if count == 0:
            del self._bounds[inode_id]
            del self._counts[inode_id]
            return
        bounds = self._bounds[inode_id]
        self._counts[inode_id] = count
        end = start + n
        i = bisect_right(bounds, start)  # odd: start inside run [i-1, i)
        run_start, run_end = bounds[i - 1], bounds[i]
        if run_start == start and run_end == end:
            del bounds[i - 1:i + 1]
        elif run_start == start:
            bounds[i - 1] = end
        elif run_end == end:
            bounds[i] = start
        else:  # split the run around the hole
            bounds[i:i] = (start, end)

    def discard(self, inode_id: int, page: int) -> None:
        """Mark ``page`` non-resident (caller guarantees it was)."""
        bounds = self._bounds[inode_id]
        count = self._counts[inode_id] - 1
        if count == 0:
            del self._bounds[inode_id]
            del self._counts[inode_id]
            return
        self._counts[inode_id] = count
        i = bisect_right(bounds, page)  # odd: page inside run [i-1, i)
        start, end = bounds[i - 1], bounds[i]
        if start == page and end == page + 1:
            del bounds[i - 1:i + 1]
        elif start == page:
            bounds[i - 1] = page + 1
        elif end == page + 1:
            bounds[i] = page
        else:  # split the run around the hole
            bounds[i:i] = (page, page + 1)

    def pop_inode(self, inode_id: int) -> Iterator[int]:
        """Remove the inode's entry, yielding its pages in ascending order."""
        bounds = self._bounds.pop(inode_id, None)
        self._counts.pop(inode_id, None)
        if bounds is None:
            return iter(())
        return iter([p for i in range(0, len(bounds), 2)
                     for p in range(bounds[i], bounds[i + 1])])

    def pages(self, inode_id: int) -> frozenset[int]:
        bounds = self._bounds.get(inode_id)
        if bounds is None:
            return _EMPTY_PAGES
        return frozenset(p for i in range(0, len(bounds), 2)
                         for p in range(bounds[i], bounds[i + 1]))

    def runs(self, inode_id: int, npages: int) -> list[tuple[int, int]]:
        """Resident ``[start, end)`` runs clipped to ``[0, npages)``."""
        bounds = self._bounds.get(inode_id)
        if not bounds or npages <= 0 or bounds[0] >= npages:
            return []
        hi = bisect_right(bounds, npages - 1)
        out = [(bounds[i], bounds[i + 1])
               for i in range(0, hi - (hi & 1), 2)]
        if hi & 1:  # npages-1 lands inside run [hi-1, hi): clip it
            out.append((bounds[hi - 1], npages))
        return out

    def count(self, inode_id: int, npages: int) -> int:
        bounds = self._bounds.get(inode_id)
        if not bounds:
            return 0
        if bounds[-1] <= npages:  # whole index below the limit
            return self._counts[inode_id]
        return sum(end - start for start, end in self.runs(inode_id, npages))

    def bitmap(self, inode_id: int, npages: int) -> list[bool]:
        out = [False] * npages
        for start, end in self.runs(inode_id, npages):
            out[start:end] = [True] * (end - start)
        return out

    def inodes(self) -> Iterable[int]:
        return self._bounds.keys()

    def clear(self) -> None:
        self._bounds.clear()
        self._counts.clear()


class SetResidency:
    """The pre-interval-run reference: one ``set[int]`` per inode.

    Point updates are O(1), but every runs/count/bitmap query pays
    O(resident) (plus a sort for runs) — the cost profile the run and
    bitmap backends exist to remove.  Kept for property tests and as the
    benchmark baseline.
    """

    kind = "sets"

    def __init__(self) -> None:
        self._by_inode: dict[int, set[int]] = {}

    def add(self, inode_id: int, page: int) -> None:
        self._by_inode.setdefault(inode_id, set()).add(page)

    def add_run(self, inode_id: int, start: int, n: int) -> None:
        self._by_inode.setdefault(inode_id, set()).update(
            range(start, start + n))

    def discard_run(self, inode_id: int, start: int, n: int) -> None:
        pages = self._by_inode.get(inode_id)
        if pages is not None:
            pages.difference_update(range(start, start + n))
            if not pages:
                del self._by_inode[inode_id]

    def discard(self, inode_id: int, page: int) -> None:
        pages = self._by_inode.get(inode_id)
        if pages is not None:
            pages.discard(page)
            if not pages:
                del self._by_inode[inode_id]

    def pop_inode(self, inode_id: int) -> Iterator[int]:
        pages = self._by_inode.pop(inode_id, None)
        return iter(sorted(pages)) if pages else iter(())

    def pages(self, inode_id: int) -> frozenset[int]:
        pages = self._by_inode.get(inode_id)
        return frozenset(pages) if pages else _EMPTY_PAGES

    def runs(self, inode_id: int, npages: int) -> list[tuple[int, int]]:
        pages = self._by_inode.get(inode_id)
        if not pages:
            return []
        out: list[tuple[int, int]] = []
        start = prev = None
        for page in sorted(p for p in pages if 0 <= p < npages):
            if start is None:
                start = prev = page
            elif page == prev + 1:
                prev = page
            else:
                out.append((start, prev + 1))
                start = prev = page
        if start is not None:
            out.append((start, prev + 1))
        return out

    def count(self, inode_id: int, npages: int) -> int:
        pages = self._by_inode.get(inode_id)
        if not pages:
            return 0
        return sum(1 for page in pages if page < npages)

    def bitmap(self, inode_id: int, npages: int) -> list[bool]:
        pages = self._by_inode.get(inode_id, _EMPTY_PAGES)
        return [idx in pages for idx in range(npages)]

    def inodes(self) -> Iterable[int]:
        return self._by_inode.keys()

    def clear(self) -> None:
        self._by_inode.clear()


class BitmapResidency:
    """numpy boolean bitmap per inode; runs via vectorised edge detection.

    Arrays grow geometrically as higher page indices appear; ``count`` is
    tracked incrementally so it never rescans.  All query results are
    converted back to plain Python ints/bools, so downstream arithmetic is
    bit-identical to the pure-python backends.
    """

    kind = "bitmap"

    def __init__(self) -> None:
        self._maps: dict[int, "_np.ndarray"] = {}
        self._counts: dict[int, int] = {}

    def _grown(self, arr: "_np.ndarray", page: int) -> "_np.ndarray":
        size = max(64, int(arr.size * 2), page + 1)
        grown = _np.zeros(size, dtype=bool)
        grown[:arr.size] = arr
        return grown

    def add(self, inode_id: int, page: int) -> None:
        arr = self._maps.get(inode_id)
        if arr is None:
            arr = self._maps[inode_id] = _np.zeros(
                max(64, page + 1), dtype=bool)
            self._counts[inode_id] = 0
        elif page >= arr.size:
            arr = self._maps[inode_id] = self._grown(arr, page)
        arr[page] = True
        self._counts[inode_id] += 1

    def add_run(self, inode_id: int, start: int, n: int) -> None:
        end = start + n
        arr = self._maps.get(inode_id)
        if arr is None:
            arr = self._maps[inode_id] = _np.zeros(
                max(64, end), dtype=bool)
            self._counts[inode_id] = 0
        elif end > arr.size:
            arr = self._maps[inode_id] = self._grown(arr, end - 1)
        arr[start:end] = True
        self._counts[inode_id] += n

    def discard_run(self, inode_id: int, start: int, n: int) -> None:
        arr = self._maps.get(inode_id)
        if arr is None:
            return
        arr[start:start + n] = False
        count = self._counts[inode_id] - n
        if count == 0:
            del self._maps[inode_id]
            del self._counts[inode_id]
        else:
            self._counts[inode_id] = count

    def discard(self, inode_id: int, page: int) -> None:
        arr = self._maps.get(inode_id)
        if arr is None or page >= arr.size:
            return
        arr[page] = False
        count = self._counts[inode_id] - 1
        if count == 0:
            del self._maps[inode_id]
            del self._counts[inode_id]
        else:
            self._counts[inode_id] = count

    def pop_inode(self, inode_id: int) -> Iterator[int]:
        arr = self._maps.pop(inode_id, None)
        self._counts.pop(inode_id, None)
        if arr is None:
            return iter(())
        return iter([int(p) for p in _np.flatnonzero(arr)])

    def pages(self, inode_id: int) -> frozenset[int]:
        arr = self._maps.get(inode_id)
        if arr is None:
            return _EMPTY_PAGES
        return frozenset(int(p) for p in _np.flatnonzero(arr))

    def runs(self, inode_id: int, npages: int) -> list[tuple[int, int]]:
        arr = self._maps.get(inode_id)
        if arr is None or npages <= 0:
            return []
        view = arr[:npages]
        padded = _np.zeros(view.size + 2, dtype=bool)
        padded[1:-1] = view
        edges = _np.flatnonzero(padded[1:] != padded[:-1])
        return [(int(edges[i]), int(edges[i + 1]))
                for i in range(0, len(edges), 2)]

    def count(self, inode_id: int, npages: int) -> int:
        arr = self._maps.get(inode_id)
        if arr is None:
            return 0
        if arr.size <= npages:
            return self._counts[inode_id]
        return int(arr[:npages].sum())

    def bitmap(self, inode_id: int, npages: int) -> list[bool]:
        arr = self._maps.get(inode_id)
        if arr is None:
            return [False] * npages
        out = [False] * npages
        for page in _np.flatnonzero(arr[:npages]):
            out[page] = True
        return out

    def inodes(self) -> Iterable[int]:
        return self._maps.keys()

    def clear(self) -> None:
        self._maps.clear()
        self._counts.clear()
