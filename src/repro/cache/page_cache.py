"""The global file-system buffer cache.

One :class:`PageCache` instance per simulated kernel caches (inode, page)
keys with a fixed page capacity and a pluggable replacement policy.  The
cache stores *residency only*; page bytes live in the filesystem's content
store.  That mirrors what SLEDs needs from the real Linux page cache — the
kernel-side SLED builder only asks "is this page resident, and if not,
which device holds it?".

Two access styles matter:

* :meth:`access` — the read path: records a hit (touching recency) or a
  miss.
* :meth:`peek` — the SLED builder: checks residency *without* touching
  recency, so asking for SLEDs does not itself distort the cache state the
  SLEDs describe.

For the SLED builder the cache additionally maintains a per-inode
*residency index* (pluggable — sorted interval runs by default, an
optional numpy bitmap, or the plain-set reference; see
:mod:`repro.cache.residency`) and a per-inode *generation*: a
monotonically increasing counter bumped on every insert, eviction, or
invalidation that changes the inode's residency.  The run-based index
makes per-inode queries — :meth:`resident_runs`, :meth:`resident_count`,
:meth:`resident_pages`, :meth:`invalidate_inode` — O(runs) instead of
O(pages) or O(cache-size); the generation is the cache half of the stamp
that lets the kernel serve repeated ``FSLEDS_GET`` requests without
re-walking the file (see :mod:`repro.core.builder` and
``docs/performance.md``).

Multi-tenancy
-------------

The cache scales out along two orthogonal axes (both default-off, and a
1-shard no-limit cache executes the exact seed operation sequence):

* **Sharding** (``shards=N``): keys hash (by inode id) onto N independent
  shards, each with its own replacement-policy instance and capacity
  share.  Residency, pinning, the per-inode index, and generations stay
  global — SLED builds and invalidation are shard-oblivious — but victim
  selection and capacity pressure are per shard, so thousands of
  concurrent tasks do not serialise recency updates through one policy
  structure.  A global *eviction balancer* periodically reassigns
  capacity toward hot shards (proportional to recent insertions, with a
  floor so cold shards never starve).

* **Tenant working-set limits** (``tenant_limits={tenant: TenantMemoryLimit}``):
  cgroup-style isolation.  Above ``soft_pages`` a tenant becomes the
  preferred reclaim victim (its oldest page goes before the shard
  policy's choice); at ``hard_pages`` an insert by that tenant evicts the
  tenant's own oldest page first, so one streaming tenant can never push
  another tenant's working set out of memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.policies import (LruPolicy, PageKey, ReplacementPolicy,
                                  make_policy)
from repro.cache.residency import make_residency

_EMPTY_PAGES: frozenset[int] = frozenset()


@dataclass(frozen=True)
class TenantMemoryLimit:
    """cgroup-style working-set bounds for one tenant.

    ``soft_pages`` — reclaim pressure: above this many resident pages the
    tenant's oldest page is the preferred eviction victim.  ``hard_pages``
    — cap: an insert by a tenant at its cap evicts the tenant's own
    oldest page first.  Either may be ``None`` (unbounded on that axis).
    """

    soft_pages: int | None = None
    hard_pages: int | None = None

    def __post_init__(self) -> None:
        for name in ("soft_pages", "hard_pages"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive: {value}")
        if (self.soft_pages is not None and self.hard_pages is not None
                and self.soft_pages > self.hard_pages):
            raise ValueError(
                f"soft_pages {self.soft_pages} exceeds hard_pages "
                f"{self.hard_pages}")


class _Shard:
    """One cache shard: a policy instance plus its capacity share."""

    __slots__ = ("policy", "capacity", "count", "recent_insertions")

    def __init__(self, policy: ReplacementPolicy, capacity: int) -> None:
        self.policy = policy
        self.capacity = capacity
        self.count = 0
        self.recent_insertions = 0


@dataclass
class CacheStats:
    """Cumulative hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: evictions that had to sacrifice a pinned page (pin pressure)
    forced_pinned_evictions: int = 0
    #: evictions chosen by soft-limit reclaim pressure (over-soft tenant)
    tenant_soft_evictions: int = 0
    #: evictions forced by a tenant hitting its hard cap (self-eviction)
    tenant_hard_evictions: int = 0
    #: capacity rebalances performed by the eviction balancer
    rebalances: int = 0
    #: evictions by owning tenant (untenanted pages are not counted)
    tenant_evictions: dict = field(default_factory=dict)

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.invalidations = 0
        self.forced_pinned_evictions = 0
        self.tenant_soft_evictions = 0
        self.tenant_hard_evictions = 0
        self.rebalances = 0
        self.tenant_evictions = {}

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class PageCache:
    """Fixed-capacity page cache keyed by ``(inode_id, page_index)``."""

    def __init__(self, capacity_pages: int,
                 policy: str | ReplacementPolicy = "lru",
                 max_pinned_fraction: float = 0.9,
                 residency: str = "runs",
                 shards: int = 1,
                 tenant_limits: dict[str, TenantMemoryLimit] | None = None,
                 rebalance_every: int = 1024) -> None:
        if capacity_pages <= 0:
            raise ValueError(f"cache capacity must be positive: {capacity_pages}")
        if not 0.0 <= max_pinned_fraction <= 1.0:
            raise ValueError(
                f"max_pinned_fraction must be in [0, 1]: {max_pinned_fraction}")
        if shards <= 0:
            raise ValueError(f"shards must be positive: {shards}")
        if shards > capacity_pages:
            raise ValueError(
                f"shards {shards} exceeds capacity {capacity_pages}")
        if shards > 1 and not isinstance(policy, str):
            raise ValueError(
                "a sharded cache needs a policy *name* (one instance per "
                "shard); got a policy object")
        if rebalance_every <= 0:
            raise ValueError(
                f"rebalance_every must be positive: {rebalance_every}")
        self.capacity_pages = capacity_pages
        self.max_pinned_fraction = max_pinned_fraction
        self.rebalance_every = rebalance_every
        base, extra = divmod(capacity_pages, shards)
        self._shards: list[_Shard] = [
            _Shard(make_policy(policy) if isinstance(policy, str) else policy,
                   base + (1 if i < extra else 0))
            for i in range(shards)
        ]
        self._nshards = shards
        self._inserts_since_rebalance = 0
        self._resident: set[PageKey] = set()
        self._pinned: set[PageKey] = set()
        #: per-inode residency index backend (runs | bitmap | sets)
        self._index = make_residency(residency)
        #: per-inode residency generation; entries survive full eviction so
        #: a generation never moves backwards for a given inode id
        self._generations: dict[int, int] = {}
        #: tenant bookkeeping, populated lazily — untenanted workloads
        #: never touch these (the seed fast path stays allocation-free)
        self._tenant_limits: dict[str, TenantMemoryLimit] = (
            dict(tenant_limits) if tenant_limits else {})
        self._page_tenant: dict[PageKey, str] = {}
        self._tenant_pages: dict[str, dict[PageKey, None]] = {}
        #: owner of the page most recently evicted (None if untenanted);
        #: the kernel reads this to attribute evictions per tenant
        self.last_evicted_owner: str | None = None
        self.stats = CacheStats()
        #: optional telemetry observer (see repro.obs.telemetry) receiving
        #: on_cache_access / on_cache_insert / on_cache_evict /
        #: on_cache_remove; purely observational, never affects residency
        self.observer = None
        #: optional wall-clock profiler (repro.obs.profile) timing the
        #: residency-update path; never affects residency or virtual time
        self.profiler = None

    @property
    def policy(self) -> ReplacementPolicy:
        """Shard 0's replacement policy — *the* policy at 1 shard."""
        return self._shards[0].policy

    @property
    def nshards(self) -> int:
        return self._nshards

    @property
    def residency_kind(self) -> str:
        """Which residency index backend this cache runs on."""
        return self._index.kind

    def _shard_of(self, key: PageKey) -> _Shard:
        return self._shards[key[0] % self._nshards]

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, key: PageKey) -> bool:
        return key in self._resident

    def peek(self, key: PageKey) -> bool:
        """Residency check that does not disturb replacement state."""
        return key in self._resident

    def generation(self, inode_id: int) -> int:
        """The inode's residency generation: bumps on every insert,
        eviction, or invalidation touching the inode.  Two equal readings
        with no interleaving bump guarantee identical residency."""
        return self._generations.get(inode_id, 0)

    def resident_set(self, inode_id: int) -> frozenset[int]:
        """The inode's resident page indices, as a fresh frozenset.

        O(resident-in-inode) materialisation; prefer :meth:`resident_runs`
        on hot paths — a densely resident inode is only a few runs."""
        return self._index.pages(inode_id)

    def resident_runs(self, inode_id: int,
                      npages: int) -> list[tuple[int, int]]:
        """Sorted resident ``[start, end)`` page runs clipped to
        ``[0, npages)`` — the shape the SLED interval-merge builder
        consumes.  O(runs) on the run/bitmap backends."""
        profiler = self.profiler
        if profiler is None:
            return self._index.runs(inode_id, npages)
        t0 = profiler.begin()
        runs = self._index.runs(inode_id, npages)
        profiler.add("cache.resident_runs", t0)
        return runs

    def resident_pages(self, inode_id: int, npages: int) -> list[bool]:
        """Residency bitmap for the first ``npages`` pages of an inode.

        O(runs + npages) output fill, no per-page membership probes."""
        return self._index.bitmap(inode_id, npages)

    def resident_count(self, inode_id: int, npages: int) -> int:
        """Number of the inode's first ``npages`` pages currently cached.

        O(runs) on the run backend (O(1) when the whole index fits)."""
        return self._index.count(inode_id, npages)

    def tenant_resident_count(self, tenant: str) -> int:
        """How many resident pages the tenant currently owns."""
        pages = self._tenant_pages.get(tenant)
        return len(pages) if pages is not None else 0

    def tenant_report(self) -> dict[str, dict[str, int | None]]:
        """Per-tenant residency vs configured limits, for observability."""
        tenants = set(self._tenant_pages) | set(self._tenant_limits)
        out: dict[str, dict[str, int | None]] = {}
        for tenant in sorted(tenants):
            limit = self._tenant_limits.get(tenant)
            out[tenant] = {
                "resident_pages": self.tenant_resident_count(tenant),
                "soft_pages": limit.soft_pages if limit else None,
                "hard_pages": limit.hard_pages if limit else None,
                "evictions": self.stats.tenant_evictions.get(tenant, 0),
            }
        return out

    def shard_report(self) -> list[dict[str, int]]:
        """Per-shard occupancy and capacity, for observability."""
        return [{"capacity_pages": shard.capacity,
                 "resident_pages": shard.count,
                 "recent_insertions": shard.recent_insertions}
                for shard in self._shards]

    # -- index maintenance -----------------------------------------------

    def _index_add(self, key: PageKey) -> None:
        inode_id, page = key
        self._index.add(inode_id, page)
        self._generations[inode_id] = self._generations.get(inode_id, 0) + 1

    def _index_discard(self, key: PageKey) -> None:
        inode_id, page = key
        self._index.discard(inode_id, page)
        self._generations[inode_id] = self._generations.get(inode_id, 0) + 1

    # -- tenant bookkeeping ----------------------------------------------

    def _tenant_track(self, key: PageKey, tenant: str) -> None:
        self._page_tenant[key] = tenant
        pages = self._tenant_pages.get(tenant)
        if pages is None:
            pages = self._tenant_pages[tenant] = {}
        pages[key] = None

    def _tenant_forget(self, key: PageKey) -> str | None:
        """Drop tenant bookkeeping for an evicted/invalidated key."""
        if not self._page_tenant:
            return None
        tenant = self._page_tenant.pop(key, None)
        if tenant is not None:
            pages = self._tenant_pages.get(tenant)
            if pages is not None:
                pages.pop(key, None)
                if not pages:
                    del self._tenant_pages[tenant]
        return tenant

    def _note_eviction_owner(self, key: PageKey) -> None:
        owner = self._tenant_forget(key)
        self.last_evicted_owner = owner
        if owner is not None:
            stats = self.stats
            stats.tenant_evictions[owner] = (
                stats.tenant_evictions.get(owner, 0) + 1)

    # -- the read/write path --------------------------------------------------

    def access(self, key: PageKey) -> bool:
        """Record an access; returns True on hit, False on miss.

        A miss does *not* insert; the kernel inserts after the device read
        completes, via :meth:`insert`.
        """
        if key in self._resident:
            self._shard_of(key).policy.on_hit(key)
            self.stats.hits += 1
            if self.observer is not None:
                self.observer.on_cache_access(key, hit=True)
            return True
        self.stats.misses += 1
        if self.observer is not None:
            self.observer.on_cache_access(key, hit=False)
        return False

    def insert(self, key: PageKey, tenant: str | None = None) -> PageKey | None:
        """Make ``key`` resident; returns the evicted key, if any.

        Inserting an already-resident key just refreshes its recency.
        Pinned pages are passed over during victim selection (they get a
        fresh lease in the policy); only when *every* resident page is
        pinned does the cache sacrifice one, counting it in
        ``stats.forced_pinned_evictions``.

        ``tenant`` attributes the page to a tenant for working-set
        accounting and limits; ``None`` (the default) takes the exact seed
        path with no tenant bookkeeping.
        """
        profiler = self.profiler
        t0 = profiler.begin() if profiler is not None else 0.0
        shard = self._shard_of(key)
        if key in self._resident:
            shard.policy.on_hit(key)
            if profiler is not None:
                profiler.add("cache.residency", t0)
            return None
        evicted: PageKey | None = None
        if tenant is not None:
            self._enforce_hard_cap(tenant)
        if shard.count >= shard.capacity:
            evicted = self._evict_one(shard)
        self._resident.add(key)
        self._index_add(key)
        shard.policy.on_insert(key)
        shard.count += 1
        self.stats.insertions += 1
        if tenant is not None:
            self._tenant_track(key, tenant)
        if self.observer is not None:
            self.observer.on_cache_insert(key)
        if self._nshards > 1:
            shard.recent_insertions += 1
            self._inserts_since_rebalance += 1
            if self._inserts_since_rebalance >= self.rebalance_every:
                self._rebalance()
        if profiler is not None:
            profiler.add("cache.residency", t0)
        return evicted

    def insert_run(self, inode_id: int, start: int, n: int) -> int | None:
        """Batched :meth:`insert` of the ``n`` pages ``[start, start+n)``
        of one inode — the kernel's vectorised fault path calls this with
        a run of pages it has just read, *all guaranteed non-resident*.

        Returns the number of evictions performed, or ``None`` (with no
        state touched) when the batch is not provably equivalent to ``n``
        scalar inserts — sharding, tenants, pins, an observer, a
        non-LRU policy, or a run larger than the shard.  The caller must
        then fall back to per-page :meth:`insert` calls.

        Equivalence argument: under strict LRU with no pins, scalar
        interleaving evicts ``max(0, count + n - capacity)`` victims from
        the *front* of the recency order while appending the new keys at
        the back; with ``n <= capacity`` every victim predates the batch,
        so evicting them all first and then appending the run reaches the
        identical final order, residency, index, and generation values.
        """
        if (self._nshards != 1 or self._pinned or self.observer is not None
                or self._tenant_limits or self._page_tenant):
            return None
        shard = self._shards[0]
        policy = shard.policy
        if type(policy) is not LruPolicy or n > shard.capacity:
            return None
        profiler = self.profiler
        t0 = profiler.begin() if profiler is not None else 0.0
        need = shard.count + n - shard.capacity
        evictions = 0
        generations = self._generations
        if need > 0:
            resident = self._resident
            index = self._index
            # group consecutive same-inode victims into index run-discards
            run_inode = run_start = run_len = None
            while evictions < need:
                victim = policy.choose_victim()
                resident.discard(victim)
                vin, vpage = victim
                if run_inode == vin and vpage == run_start + run_len:
                    run_len += 1
                else:
                    if run_inode is not None:
                        index.discard_run(run_inode, run_start, run_len)
                        generations[run_inode] = (
                            generations.get(run_inode, 0) + run_len)
                    run_inode, run_start, run_len = vin, vpage, 1
                evictions += 1
            index.discard_run(run_inode, run_start, run_len)
            generations[run_inode] = generations.get(run_inode, 0) + run_len
            self.last_evicted_owner = None
            shard.count -= need
            self.stats.evictions += need
        self._resident.update((inode_id, page)
                              for page in range(start, start + n))
        self._index.add_run(inode_id, start, n)
        generations[inode_id] = generations.get(inode_id, 0) + n
        policy.on_insert_run(inode_id, start, n)
        shard.count += n
        self.stats.insertions += n
        if profiler is not None:
            profiler.add("cache.residency", t0)
        return evictions

    def _evict_one(self, shard: _Shard) -> PageKey:
        if self._tenant_limits:
            victim = self._soft_victim(shard)
            if victim is not None:
                self._resident.discard(victim)
                self._index_discard(victim)
                self._note_eviction_owner(victim)
                shard.policy.on_remove(victim)
                shard.count -= 1
                self.stats.evictions += 1
                self.stats.tenant_soft_evictions += 1
                if self.observer is not None:
                    self.observer.on_cache_evict(victim, forced=False)
                return victim
        for _ in range(shard.count):
            victim = shard.policy.choose_victim()
            if victim not in self._pinned:
                self._resident.discard(victim)
                self._index_discard(victim)
                if self._page_tenant:
                    self._note_eviction_owner(victim)
                else:
                    self.last_evicted_owner = None
                shard.count -= 1
                self.stats.evictions += 1
                if self.observer is not None:
                    self.observer.on_cache_evict(victim, forced=False)
                return victim
            # pinned: give it a fresh lease and keep looking
            shard.policy.on_refresh(victim)
        # every resident page is pinned: forced eviction, oldest pinned
        victim = shard.policy.choose_victim()
        self._pinned.discard(victim)
        self._resident.discard(victim)
        self._index_discard(victim)
        if self._page_tenant:
            self._note_eviction_owner(victim)
        else:
            self.last_evicted_owner = None
        shard.count -= 1
        self.stats.evictions += 1
        self.stats.forced_pinned_evictions += 1
        if self.observer is not None:
            self.observer.on_cache_evict(victim, forced=True)
        return victim

    def _soft_victim(self, shard: _Shard) -> PageKey | None:
        """The oldest unpinned page (in this shard) of a tenant over its
        soft limit — the cgroup-style preferred reclaim victim."""
        for tenant, limit in self._tenant_limits.items():
            if limit.soft_pages is None:
                continue
            pages = self._tenant_pages.get(tenant)
            if pages is None or len(pages) <= limit.soft_pages:
                continue
            for key in pages:
                if key not in self._pinned and self._shard_of(key) is shard:
                    return key
        return None

    def _enforce_hard_cap(self, tenant: str) -> None:
        """Evict the tenant's own oldest unpinned pages while it sits at
        or above its hard cap, so the upcoming insert is self-funded."""
        limit = self._tenant_limits.get(tenant)
        if limit is None or limit.hard_pages is None:
            return
        pages = self._tenant_pages.get(tenant)
        while pages and len(pages) >= limit.hard_pages:
            victim = next(
                (key for key in pages if key not in self._pinned), None)
            if victim is None:  # every page pinned: cap cannot be enforced
                return
            shard = self._shard_of(victim)
            self._resident.discard(victim)
            self._index_discard(victim)
            self._note_eviction_owner(victim)
            shard.policy.on_remove(victim)
            shard.count -= 1
            self.stats.evictions += 1
            self.stats.tenant_hard_evictions += 1
            if self.observer is not None:
                self.observer.on_cache_evict(victim, forced=False)
            pages = self._tenant_pages.get(tenant)

    # -- the eviction balancer -------------------------------------------

    def _rebalance(self) -> None:
        """Reassign shard capacities toward recently-hot shards.

        Each shard keeps a floor (a quarter of its even share) so cold
        shards never starve; the remainder is split proportionally to the
        insertions observed since the last rebalance, largest remainders
        rounding up so the shares sum exactly to ``capacity_pages``.
        Shards that shrank below their occupancy evict down immediately.
        """
        self._inserts_since_rebalance = 0
        shards = self._shards
        floor = max(1, self.capacity_pages // (self._nshards * 4))
        spare = self.capacity_pages - floor * self._nshards
        weights = [shard.recent_insertions for shard in shards]
        total = sum(weights)
        if total == 0:
            weights = [1] * self._nshards
            total = self._nshards
        exact = [spare * w / total for w in weights]
        grants = [int(x) for x in exact]
        remainder = spare - sum(grants)
        for i in sorted(range(self._nshards),
                        key=lambda i: (grants[i] - exact[i], i)):
            if remainder <= 0:
                break
            grants[i] += 1
            remainder -= 1
        for shard, grant in zip(shards, grants):
            shard.capacity = floor + grant
            shard.recent_insertions = 0
            while shard.count > shard.capacity:
                self._evict_one(shard)
        self.stats.rebalances += 1

    # -- pinning (the paper's §3.4 lock/reservation mechanism) -------------

    def pin(self, key: PageKey) -> bool:
        """Lock a resident page against eviction.

        Returns False (no pin taken) when the page is not resident or the
        pin budget (``max_pinned_fraction`` of capacity) is exhausted —
        the reservation analogue of mlock limits.
        """
        if key not in self._resident or key in self._pinned:
            return key in self._pinned
        if (len(self._pinned) + 1
                > self.max_pinned_fraction * self.capacity_pages):
            return False
        self._pinned.add(key)
        return True

    def unpin(self, key: PageKey) -> bool:
        """Release a pin; returns True if the key was pinned."""
        if key in self._pinned:
            self._pinned.discard(key)
            return True
        return False

    def is_pinned(self, key: PageKey) -> bool:
        return key in self._pinned

    @property
    def pinned_count(self) -> int:
        return len(self._pinned)

    # -- invalidation -----------------------------------------------------------

    def invalidate(self, key: PageKey) -> bool:
        """Drop one page; returns True if it was resident."""
        if key not in self._resident:
            return False
        shard = self._shard_of(key)
        self._resident.discard(key)
        self._index_discard(key)
        self._pinned.discard(key)
        if self._page_tenant:
            self._tenant_forget(key)
        shard.policy.on_remove(key)
        shard.count -= 1
        self.stats.invalidations += 1
        if self.observer is not None:
            self.observer.on_cache_remove(key)
        return True

    def invalidate_inode(self, inode_id: int) -> int:
        """Drop every cached page of an inode; returns the count dropped.

        O(resident-in-inode) via the residency index, pages visited in
        ascending order.  Always bumps the inode's generation, so a
        kernel-cached SLED vector is invalidated even when nothing was
        resident.
        """
        count = 0
        shard = self._shards[inode_id % self._nshards]
        for page in self._index.pop_inode(inode_id):
            count += 1
            key = (inode_id, page)
            self._resident.discard(key)
            self._pinned.discard(key)
            if self._page_tenant:
                self._tenant_forget(key)
            shard.policy.on_remove(key)
            shard.count -= 1
            if self.observer is not None:
                self.observer.on_cache_remove(key)
        self._generations[inode_id] = self._generations.get(inode_id, 0) + 1
        self.stats.invalidations += count
        return count

    def clear(self) -> int:
        """Drop everything (e.g. to simulate a cold boot); returns count."""
        count = len(self._resident)
        for key in list(self._resident):
            self._shard_of(key).policy.on_remove(key)
            if self.observer is not None:
                self.observer.on_cache_remove(key)
        self._resident.clear()
        self._pinned.clear()
        self._page_tenant.clear()
        self._tenant_pages.clear()
        for shard in self._shards:
            shard.count = 0
        for inode_id in list(self._index.inodes()):
            self._generations[inode_id] = self._generations.get(inode_id, 0) + 1
        self._index.clear()
        self.stats.invalidations += count
        return count
