"""The global file-system buffer cache.

One :class:`PageCache` instance per simulated kernel caches (inode, page)
keys with a fixed page capacity and a pluggable replacement policy.  The
cache stores *residency only*; page bytes live in the filesystem's content
store.  That mirrors what SLEDs needs from the real Linux page cache — the
kernel-side SLED builder only asks "is this page resident, and if not,
which device holds it?".

Two access styles matter:

* :meth:`access` — the read path: records a hit (touching recency) or a
  miss.
* :meth:`peek` — the SLED builder: checks residency *without* touching
  recency, so asking for SLEDs does not itself distort the cache state the
  SLEDs describe.

For the SLED builder the cache additionally maintains a per-inode
*residency index* (pluggable — sorted interval runs by default, an
optional numpy bitmap, or the plain-set reference; see
:mod:`repro.cache.residency`) and a per-inode *generation*: a
monotonically increasing counter bumped on every insert, eviction, or
invalidation that changes the inode's residency.  The run-based index
makes per-inode queries — :meth:`resident_runs`, :meth:`resident_count`,
:meth:`resident_pages`, :meth:`invalidate_inode` — O(runs) instead of
O(pages) or O(cache-size); the generation is the cache half of the stamp
that lets the kernel serve repeated ``FSLEDS_GET`` requests without
re-walking the file (see :mod:`repro.core.builder` and
``docs/performance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.policies import PageKey, ReplacementPolicy, make_policy
from repro.cache.residency import make_residency

_EMPTY_PAGES: frozenset[int] = frozenset()


@dataclass
class CacheStats:
    """Cumulative hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: evictions that had to sacrifice a pinned page (pin pressure)
    forced_pinned_evictions: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.invalidations = 0
        self.forced_pinned_evictions = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class PageCache:
    """Fixed-capacity page cache keyed by ``(inode_id, page_index)``."""

    def __init__(self, capacity_pages: int,
                 policy: str | ReplacementPolicy = "lru",
                 max_pinned_fraction: float = 0.9,
                 residency: str = "runs") -> None:
        if capacity_pages <= 0:
            raise ValueError(f"cache capacity must be positive: {capacity_pages}")
        if not 0.0 <= max_pinned_fraction <= 1.0:
            raise ValueError(
                f"max_pinned_fraction must be in [0, 1]: {max_pinned_fraction}")
        self.capacity_pages = capacity_pages
        self.policy = (make_policy(policy) if isinstance(policy, str)
                       else policy)
        self.max_pinned_fraction = max_pinned_fraction
        self._resident: set[PageKey] = set()
        self._pinned: set[PageKey] = set()
        #: per-inode residency index backend (runs | bitmap | sets)
        self._index = make_residency(residency)
        #: per-inode residency generation; entries survive full eviction so
        #: a generation never moves backwards for a given inode id
        self._generations: dict[int, int] = {}
        self.stats = CacheStats()
        #: optional telemetry observer (see repro.obs.telemetry) receiving
        #: on_cache_access / on_cache_insert / on_cache_evict /
        #: on_cache_remove; purely observational, never affects residency
        self.observer = None
        #: optional wall-clock profiler (repro.obs.profile) timing the
        #: residency-update path; never affects residency or virtual time
        self.profiler = None

    @property
    def residency_kind(self) -> str:
        """Which residency index backend this cache runs on."""
        return self._index.kind

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, key: PageKey) -> bool:
        return key in self._resident

    def peek(self, key: PageKey) -> bool:
        """Residency check that does not disturb replacement state."""
        return key in self._resident

    def generation(self, inode_id: int) -> int:
        """The inode's residency generation: bumps on every insert,
        eviction, or invalidation touching the inode.  Two equal readings
        with no interleaving bump guarantee identical residency."""
        return self._generations.get(inode_id, 0)

    def resident_set(self, inode_id: int) -> frozenset[int]:
        """The inode's resident page indices, as a fresh frozenset.

        O(resident-in-inode) materialisation; prefer :meth:`resident_runs`
        on hot paths — a densely resident inode is only a few runs."""
        return self._index.pages(inode_id)

    def resident_runs(self, inode_id: int,
                      npages: int) -> list[tuple[int, int]]:
        """Sorted resident ``[start, end)`` page runs clipped to
        ``[0, npages)`` — the shape the SLED interval-merge builder
        consumes.  O(runs) on the run/bitmap backends."""
        profiler = self.profiler
        if profiler is None:
            return self._index.runs(inode_id, npages)
        t0 = profiler.begin()
        runs = self._index.runs(inode_id, npages)
        profiler.add("cache.resident_runs", t0)
        return runs

    def resident_pages(self, inode_id: int, npages: int) -> list[bool]:
        """Residency bitmap for the first ``npages`` pages of an inode.

        O(runs + npages) output fill, no per-page membership probes."""
        return self._index.bitmap(inode_id, npages)

    def resident_count(self, inode_id: int, npages: int) -> int:
        """Number of the inode's first ``npages`` pages currently cached.

        O(runs) on the run backend (O(1) when the whole index fits)."""
        return self._index.count(inode_id, npages)

    # -- index maintenance -----------------------------------------------

    def _index_add(self, key: PageKey) -> None:
        inode_id, page = key
        self._index.add(inode_id, page)
        self._generations[inode_id] = self._generations.get(inode_id, 0) + 1

    def _index_discard(self, key: PageKey) -> None:
        inode_id, page = key
        self._index.discard(inode_id, page)
        self._generations[inode_id] = self._generations.get(inode_id, 0) + 1

    # -- the read/write path --------------------------------------------------

    def access(self, key: PageKey) -> bool:
        """Record an access; returns True on hit, False on miss.

        A miss does *not* insert; the kernel inserts after the device read
        completes, via :meth:`insert`.
        """
        if key in self._resident:
            self.policy.on_hit(key)
            self.stats.hits += 1
            if self.observer is not None:
                self.observer.on_cache_access(key, hit=True)
            return True
        self.stats.misses += 1
        if self.observer is not None:
            self.observer.on_cache_access(key, hit=False)
        return False

    def insert(self, key: PageKey) -> PageKey | None:
        """Make ``key`` resident; returns the evicted key, if any.

        Inserting an already-resident key just refreshes its recency.
        Pinned pages are passed over during victim selection (they get a
        fresh lease in the policy); only when *every* resident page is
        pinned does the cache sacrifice one, counting it in
        ``stats.forced_pinned_evictions``.
        """
        profiler = self.profiler
        t0 = profiler.begin() if profiler is not None else 0.0
        if key in self._resident:
            self.policy.on_hit(key)
            if profiler is not None:
                profiler.add("cache.residency", t0)
            return None
        evicted: PageKey | None = None
        if len(self._resident) >= self.capacity_pages:
            evicted = self._evict_one()
        self._resident.add(key)
        self._index_add(key)
        self.policy.on_insert(key)
        self.stats.insertions += 1
        if self.observer is not None:
            self.observer.on_cache_insert(key)
        if profiler is not None:
            profiler.add("cache.residency", t0)
        return evicted

    def _evict_one(self) -> PageKey:
        for _ in range(len(self._resident)):
            victim = self.policy.choose_victim()
            if victim not in self._pinned:
                self._resident.discard(victim)
                self._index_discard(victim)
                self.stats.evictions += 1
                if self.observer is not None:
                    self.observer.on_cache_evict(victim, forced=False)
                return victim
            # pinned: give it a fresh lease and keep looking
            self.policy.on_refresh(victim)
        # every resident page is pinned: forced eviction, oldest pinned
        victim = self.policy.choose_victim()
        self._pinned.discard(victim)
        self._resident.discard(victim)
        self._index_discard(victim)
        self.stats.evictions += 1
        self.stats.forced_pinned_evictions += 1
        if self.observer is not None:
            self.observer.on_cache_evict(victim, forced=True)
        return victim

    # -- pinning (the paper's §3.4 lock/reservation mechanism) -------------

    def pin(self, key: PageKey) -> bool:
        """Lock a resident page against eviction.

        Returns False (no pin taken) when the page is not resident or the
        pin budget (``max_pinned_fraction`` of capacity) is exhausted —
        the reservation analogue of mlock limits.
        """
        if key not in self._resident or key in self._pinned:
            return key in self._pinned
        if (len(self._pinned) + 1
                > self.max_pinned_fraction * self.capacity_pages):
            return False
        self._pinned.add(key)
        return True

    def unpin(self, key: PageKey) -> bool:
        """Release a pin; returns True if the key was pinned."""
        if key in self._pinned:
            self._pinned.discard(key)
            return True
        return False

    def is_pinned(self, key: PageKey) -> bool:
        return key in self._pinned

    @property
    def pinned_count(self) -> int:
        return len(self._pinned)

    # -- invalidation -----------------------------------------------------------

    def invalidate(self, key: PageKey) -> bool:
        """Drop one page; returns True if it was resident."""
        if key not in self._resident:
            return False
        self._resident.discard(key)
        self._index_discard(key)
        self._pinned.discard(key)
        self.policy.on_remove(key)
        self.stats.invalidations += 1
        if self.observer is not None:
            self.observer.on_cache_remove(key)
        return True

    def invalidate_inode(self, inode_id: int) -> int:
        """Drop every cached page of an inode; returns the count dropped.

        O(resident-in-inode) via the residency index, pages visited in
        ascending order.  Always bumps the inode's generation, so a
        kernel-cached SLED vector is invalidated even when nothing was
        resident.
        """
        count = 0
        for page in self._index.pop_inode(inode_id):
            count += 1
            key = (inode_id, page)
            self._resident.discard(key)
            self._pinned.discard(key)
            self.policy.on_remove(key)
            if self.observer is not None:
                self.observer.on_cache_remove(key)
        self._generations[inode_id] = self._generations.get(inode_id, 0) + 1
        self.stats.invalidations += count
        return count

    def clear(self) -> int:
        """Drop everything (e.g. to simulate a cold boot); returns count."""
        count = len(self._resident)
        for key in list(self._resident):
            self.policy.on_remove(key)
            if self.observer is not None:
                self.observer.on_cache_remove(key)
        self._resident.clear()
        self._pinned.clear()
        for inode_id in list(self._index.inodes()):
            self._generations[inode_id] = self._generations.get(inode_id, 0) + 1
        self._index.clear()
        self.stats.invalidations += count
        return count
