"""The global file-system buffer cache.

One :class:`PageCache` instance per simulated kernel caches (inode, page)
keys with a fixed page capacity and a pluggable replacement policy.  The
cache stores *residency only*; page bytes live in the filesystem's content
store.  That mirrors what SLEDs needs from the real Linux page cache — the
kernel-side SLED builder only asks "is this page resident, and if not,
which device holds it?".

Two access styles matter:

* :meth:`access` — the read path: records a hit (touching recency) or a
  miss.
* :meth:`peek` — the SLED builder: checks residency *without* touching
  recency, so asking for SLEDs does not itself distort the cache state the
  SLEDs describe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.policies import PageKey, ReplacementPolicy, make_policy


@dataclass
class CacheStats:
    """Cumulative hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: evictions that had to sacrifice a pinned page (pin pressure)
    forced_pinned_evictions: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.invalidations = 0
        self.forced_pinned_evictions = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class PageCache:
    """Fixed-capacity page cache keyed by ``(inode_id, page_index)``."""

    def __init__(self, capacity_pages: int,
                 policy: str | ReplacementPolicy = "lru",
                 max_pinned_fraction: float = 0.9) -> None:
        if capacity_pages <= 0:
            raise ValueError(f"cache capacity must be positive: {capacity_pages}")
        if not 0.0 <= max_pinned_fraction <= 1.0:
            raise ValueError(
                f"max_pinned_fraction must be in [0, 1]: {max_pinned_fraction}")
        self.capacity_pages = capacity_pages
        self.policy = (make_policy(policy) if isinstance(policy, str)
                       else policy)
        self.max_pinned_fraction = max_pinned_fraction
        self._resident: set[PageKey] = set()
        self._pinned: set[PageKey] = set()
        self.stats = CacheStats()
        #: optional telemetry observer (see repro.obs.telemetry) receiving
        #: on_cache_access / on_cache_insert / on_cache_evict /
        #: on_cache_remove; purely observational, never affects residency
        self.observer = None

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, key: PageKey) -> bool:
        return key in self._resident

    def peek(self, key: PageKey) -> bool:
        """Residency check that does not disturb replacement state."""
        return key in self._resident

    def resident_pages(self, inode_id: int, npages: int) -> list[bool]:
        """Residency bitmap for the first ``npages`` pages of an inode."""
        return [(inode_id, idx) in self._resident for idx in range(npages)]

    def resident_count(self, inode_id: int, npages: int) -> int:
        """Number of the inode's first ``npages`` pages currently cached."""
        return sum(self.resident_pages(inode_id, npages))

    # -- the read/write path --------------------------------------------------

    def access(self, key: PageKey) -> bool:
        """Record an access; returns True on hit, False on miss.

        A miss does *not* insert; the kernel inserts after the device read
        completes, via :meth:`insert`.
        """
        if key in self._resident:
            self.policy.on_hit(key)
            self.stats.hits += 1
            if self.observer is not None:
                self.observer.on_cache_access(key, hit=True)
            return True
        self.stats.misses += 1
        if self.observer is not None:
            self.observer.on_cache_access(key, hit=False)
        return False

    def insert(self, key: PageKey) -> PageKey | None:
        """Make ``key`` resident; returns the evicted key, if any.

        Inserting an already-resident key just refreshes its recency.
        Pinned pages are passed over during victim selection (they get a
        fresh lease in the policy); only when *every* resident page is
        pinned does the cache sacrifice one, counting it in
        ``stats.forced_pinned_evictions``.
        """
        if key in self._resident:
            self.policy.on_hit(key)
            return None
        evicted: PageKey | None = None
        if len(self._resident) >= self.capacity_pages:
            evicted = self._evict_one()
        self._resident.add(key)
        self.policy.on_insert(key)
        self.stats.insertions += 1
        if self.observer is not None:
            self.observer.on_cache_insert(key)
        return evicted

    def _evict_one(self) -> PageKey:
        for _ in range(len(self._resident)):
            victim = self.policy.choose_victim()
            if victim not in self._pinned:
                self._resident.discard(victim)
                self.stats.evictions += 1
                if self.observer is not None:
                    self.observer.on_cache_evict(victim, forced=False)
                return victim
            # pinned: give it a fresh lease and keep looking
            self.policy.on_insert(victim)
            self.policy.on_hit(victim)
        # every resident page is pinned: forced eviction, oldest pinned
        victim = self.policy.choose_victim()
        self._pinned.discard(victim)
        self._resident.discard(victim)
        self.stats.evictions += 1
        self.stats.forced_pinned_evictions += 1
        if self.observer is not None:
            self.observer.on_cache_evict(victim, forced=True)
        return victim

    # -- pinning (the paper's §3.4 lock/reservation mechanism) -------------

    def pin(self, key: PageKey) -> bool:
        """Lock a resident page against eviction.

        Returns False (no pin taken) when the page is not resident or the
        pin budget (``max_pinned_fraction`` of capacity) is exhausted —
        the reservation analogue of mlock limits.
        """
        if key not in self._resident or key in self._pinned:
            return key in self._pinned
        if (len(self._pinned) + 1
                > self.max_pinned_fraction * self.capacity_pages):
            return False
        self._pinned.add(key)
        return True

    def unpin(self, key: PageKey) -> bool:
        """Release a pin; returns True if the key was pinned."""
        if key in self._pinned:
            self._pinned.discard(key)
            return True
        return False

    def is_pinned(self, key: PageKey) -> bool:
        return key in self._pinned

    @property
    def pinned_count(self) -> int:
        return len(self._pinned)

    # -- invalidation -----------------------------------------------------------

    def invalidate(self, key: PageKey) -> bool:
        """Drop one page; returns True if it was resident."""
        if key not in self._resident:
            return False
        self._resident.discard(key)
        self._pinned.discard(key)
        self.policy.on_remove(key)
        self.stats.invalidations += 1
        if self.observer is not None:
            self.observer.on_cache_remove(key)
        return True

    def invalidate_inode(self, inode_id: int) -> int:
        """Drop every cached page of an inode; returns the count dropped."""
        victims = [k for k in self._resident
                   if isinstance(k, tuple) and k and k[0] == inode_id]
        for key in victims:
            self._resident.discard(key)
            self._pinned.discard(key)
            self.policy.on_remove(key)
            if self.observer is not None:
                self.observer.on_cache_remove(key)
        self.stats.invalidations += len(victims)
        return len(victims)

    def clear(self) -> int:
        """Drop everything (e.g. to simulate a cold boot); returns count."""
        count = len(self._resident)
        for key in list(self._resident):
            self.policy.on_remove(key)
            if self.observer is not None:
                self.observer.on_cache_remove(key)
        self._resident.clear()
        self._pinned.clear()
        self.stats.invalidations += count
        return count
