"""Page-replacement policies for the simulated buffer cache.

The paper's Linux 2.2 substrate used (approximately) global LRU, whose
pathological behaviour on linear scans larger than the cache is the whole
reason reordering I/O with SLEDs pays off (paper Fig. 3).  We implement LRU
as the default and CLOCK and 2Q as ablations (DESIGN.md §5.5): CLOCK behaves
like LRU for this workload, while 2Q's scan resistance changes which pages
survive a pass and therefore how much SLEDs can win.

A policy tracks *keys* only; the cache owns the mapping and the capacity
bookkeeping.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Hashable

PageKey = Hashable


class ReplacementPolicy(ABC):
    """Interface the :class:`~repro.cache.page_cache.PageCache` drives.

    Implementations are slotted: policy calls sit on the per-fault hot
    path, and ``__slots__`` keeps attribute loads dict-free.
    """

    __slots__ = ()

    #: short name used as the ``policy`` label on telemetry metrics
    name = "abstract"

    @abstractmethod
    def on_insert(self, key: PageKey) -> None:
        """A new page entered the cache."""

    @abstractmethod
    def on_hit(self, key: PageKey) -> None:
        """A cached page was accessed."""

    @abstractmethod
    def choose_victim(self) -> PageKey:
        """Pick (and forget) the page to evict.  Cache must be non-empty."""

    @abstractmethod
    def on_remove(self, key: PageKey) -> None:
        """A page was removed without eviction (invalidation)."""

    def on_refresh(self, key: PageKey) -> None:
        """Re-admit a victim the cache declined to evict (it was pinned).

        ``choose_victim`` already forgot the key, so the default re-insert
        is correct for the built-in policies; policies whose ``on_insert``
        is not safe to call twice for a key they may still track (e.g. a
        list-backed FIFO that appends unconditionally) must override this
        with a guarded path instead of relying on insert + hit.
        """
        self.on_insert(key)
        self.on_hit(key)

    @abstractmethod
    def __len__(self) -> int:
        """Number of tracked keys."""


class LruPolicy(ReplacementPolicy):
    """Strict least-recently-used replacement."""

    name = "lru"

    __slots__ = ("_order",)

    def __init__(self) -> None:
        self._order: OrderedDict[PageKey, None] = OrderedDict()

    def on_insert(self, key: PageKey) -> None:
        if key in self._order:
            raise ValueError(f"duplicate insert of {key!r}")
        self._order[key] = None

    def on_hit(self, key: PageKey) -> None:
        self._order.move_to_end(key)

    def choose_victim(self) -> PageKey:
        key, _ = self._order.popitem(last=False)
        return key

    def on_remove(self, key: PageKey) -> None:
        self._order.pop(key, None)

    def on_refresh(self, key: PageKey) -> None:
        # idempotent whether or not choose_victim forgot the key
        self._order[key] = None
        self._order.move_to_end(key)

    def on_insert_run(self, inode_id: int, start: int, n: int) -> None:
        """Append ``(inode_id, start) .. (inode_id, start+n-1)`` in page
        order — exactly ``n`` :meth:`on_insert` calls for fresh keys.
        Only the batched cache insert (``PageCache.insert_run``) calls
        this, and it guarantees the keys are new."""
        order = self._order
        for page in range(start, start + n):
            order[(inode_id, page)] = None

    def __len__(self) -> int:
        return len(self._order)


class ClockPolicy(ReplacementPolicy):
    """Second-chance (CLOCK) replacement.

    Keys sit on a circular list with a reference bit; the hand sweeps,
    clearing bits until it finds an unreferenced page.
    """

    name = "clock"

    __slots__ = ("_ring",)

    def __init__(self) -> None:
        self._ring: OrderedDict[PageKey, bool] = OrderedDict()

    def on_insert(self, key: PageKey) -> None:
        if key in self._ring:
            raise ValueError(f"duplicate insert of {key!r}")
        self._ring[key] = True

    def on_hit(self, key: PageKey) -> None:
        self._ring[key] = True

    def choose_victim(self) -> PageKey:
        while True:
            key, referenced = next(iter(self._ring.items()))
            if referenced:
                # clear the bit and move behind the hand
                del self._ring[key]
                self._ring[key] = False
            else:
                del self._ring[key]
                return key

    def on_remove(self, key: PageKey) -> None:
        self._ring.pop(key, None)

    def on_refresh(self, key: PageKey) -> None:
        # appends behind the hand when forgotten, else just re-references
        self._ring[key] = True

    def __len__(self) -> int:
        return len(self._ring)


class TwoQPolicy(ReplacementPolicy):
    """Johnson & Shasha's 2Q: a FIFO probation queue (A1in), a ghost queue
    of recently evicted once-used pages (A1out), and a protected LRU (Am).

    Pages referenced while in A1out are promoted to Am on re-insert; pure
    sequential scans wash through A1in without disturbing Am, which makes
    2Q scan-resistant.
    """

    name = "2q"

    __slots__ = ("a1in_fraction", "ghost_fraction", "_a1in", "_am", "_ghost")

    def __init__(self, a1in_fraction: float = 0.25,
                 ghost_fraction: float = 0.5) -> None:
        if not 0.0 < a1in_fraction < 1.0:
            raise ValueError(f"a1in_fraction must be in (0, 1): {a1in_fraction}")
        if ghost_fraction < 0.0:
            raise ValueError(f"ghost_fraction must be >= 0: {ghost_fraction}")
        self.a1in_fraction = a1in_fraction
        self.ghost_fraction = ghost_fraction
        self._a1in: OrderedDict[PageKey, None] = OrderedDict()
        self._am: OrderedDict[PageKey, None] = OrderedDict()
        self._ghost: OrderedDict[PageKey, None] = OrderedDict()

    def on_insert(self, key: PageKey) -> None:
        if key in self._a1in or key in self._am:
            raise ValueError(f"duplicate insert of {key!r}")
        if key in self._ghost:
            del self._ghost[key]
            self._am[key] = None
        else:
            self._a1in[key] = None

    def on_hit(self, key: PageKey) -> None:
        if key in self._am:
            self._am.move_to_end(key)
        # hits in A1in deliberately do not reorder (FIFO probation)

    def choose_victim(self) -> PageKey:
        total = len(self._a1in) + len(self._am)
        a1in_target = max(1, int(total * self.a1in_fraction))
        if self._a1in and (len(self._a1in) >= a1in_target or not self._am):
            key, _ = self._a1in.popitem(last=False)
            self._ghost[key] = None
            ghost_cap = max(1, int(total * self.ghost_fraction))
            while len(self._ghost) > ghost_cap:
                self._ghost.popitem(last=False)
            return key
        key, _ = self._am.popitem(last=False)
        return key

    def on_remove(self, key: PageKey) -> None:
        self._a1in.pop(key, None)
        self._am.pop(key, None)
        self._ghost.pop(key, None)

    def on_refresh(self, key: PageKey) -> None:
        if key not in self._a1in and key not in self._am:
            self.on_insert(key)
        self.on_hit(key)

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)


POLICY_FACTORIES = {
    "lru": LruPolicy,
    "clock": ClockPolicy,
    "2q": TwoQPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Build a policy by name (``lru``, ``clock``, ``2q``)."""
    try:
        factory = POLICY_FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(POLICY_FACTORIES)}") from None
    return factory()
