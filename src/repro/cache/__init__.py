"""Buffer-cache substrate: page cache, replacement policies, readahead."""

from repro.cache.page_cache import CacheStats, PageCache, TenantMemoryLimit
from repro.cache.policies import (
    ClockPolicy,
    LruPolicy,
    ReplacementPolicy,
    TwoQPolicy,
    make_policy,
)
from repro.cache.readahead import ReadaheadWindow
from repro.cache.residency import (
    BitmapResidency,
    RunResidency,
    SetResidency,
    make_residency,
)

__all__ = [
    "PageCache",
    "CacheStats",
    "TenantMemoryLimit",
    "RunResidency",
    "BitmapResidency",
    "SetResidency",
    "make_residency",
    "ReplacementPolicy",
    "LruPolicy",
    "ClockPolicy",
    "TwoQPolicy",
    "make_policy",
    "ReadaheadWindow",
]
