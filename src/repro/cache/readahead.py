"""Sequential readahead window tracking, one instance per open file.

Linux 2.2 grew a per-file readahead window on detected sequential access and
collapsed it on random access.  The model matters for SLEDs results in two
ways: it sets the *cluster size* of device I/O (amortising per-request
latency over multi-page transfers, without which a 128 MB NFS scan would
cost 32k round trips), and it means the without-SLEDs baseline is not
strawman-slow — its linear scans stream at full device bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ReadaheadWindow:
    """Adaptive readahead state for one open file."""

    min_pages: int = 4
    max_pages: int = 16
    #: cumulative window doublings / collapses (observability: a high
    #: collapse count on a supposedly sequential workload means the access
    #: pattern defeats the readahead heuristic)
    grows: int = 0
    collapses: int = 0
    _window: int = 0
    _next_expected: int | None = None

    def __post_init__(self) -> None:
        if not 0 < self.min_pages <= self.max_pages:
            raise ValueError(
                f"need 0 < min_pages <= max_pages: "
                f"{self.min_pages}, {self.max_pages}")
        self._window = self.min_pages

    @property
    def window_pages(self) -> int:
        """Current readahead window size in pages."""
        return self._window

    def advise(self, page_index: int) -> int:
        """Record an access to ``page_index``; return the cluster size in
        pages the kernel should fetch on a miss at this page.

        Sequential accesses double the window up to ``max_pages``; a
        non-sequential access collapses it back to ``min_pages``.
        """
        if page_index < 0:
            raise ValueError(f"negative page index: {page_index}")
        if self._next_expected is not None and page_index == self._next_expected:
            grown = min(self.max_pages, self._window * 2)
            if grown > self._window:
                self.grows += 1
            self._window = grown
        elif self._next_expected is not None and page_index != self._next_expected:
            if self._window > self.min_pages:
                self.collapses += 1
            self._window = self.min_pages
        self._next_expected = page_index + 1
        return self._window

    def reset(self) -> None:
        """Collapse the window (e.g. after an lseek)."""
        self._window = self.min_pages
        self._next_expected = None

    def state(self) -> tuple[int, int | None, int, int]:
        """Snapshot ``(window, next_expected, grows, collapses)`` — lets
        tests pin that an operation left the heuristic untouched."""
        return (self._window, self._next_expected, self.grows, self.collapses)
