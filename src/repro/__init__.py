"""SLEDs — Storage Latency Estimation Descriptors.

A full, simulation-based reproduction of Van Meter & Gao, *Latency
Management in Storage Systems* (OSDI 2000).  The package provides:

* :mod:`repro.core` — the SLEDs API: SLED vectors, the kernel-side builder,
  and the user-space pick/delivery library;
* :mod:`repro.kernel` — a simulated Unix kernel (VFS, page cache, syscalls,
  the ``FSLEDS_FILL``/``FSLEDS_GET`` ioctls);
* :mod:`repro.devices`, :mod:`repro.fs`, :mod:`repro.cache`,
  :mod:`repro.hsm` — the storage substrate (disk/CD-ROM/NFS/tape models,
  ext2/ISO9660/NFS/HSM filesystems, LRU page cache);
* :mod:`repro.apps`, :mod:`repro.lhea`, :mod:`repro.fits` — the modified
  applications (wc, grep, find, gmc, fimhisto, fimgbin) and the FITS
  substrate;
* :mod:`repro.bench` — the harness regenerating every table and figure of
  the paper's evaluation.

Quickstart::

    from repro import Machine

    machine = Machine.unix_utilities()          # paper Table 2 box
    machine.ext2.create_text_file("data/big.txt", 96 << 20, seed=7)
    machine.boot()                              # lmbench fill of the sleds table
    machine.kernel.warm_file("/mnt/ext2/data/big.txt")

    fd = machine.kernel.open("/mnt/ext2/data/big.txt")
    for sled in machine.kernel.get_sleds(fd):
        print(sled)
"""

from repro.core import (
    SLEDS_BEST,
    SLEDS_LINEAR,
    Sled,
    SledTable,
    SledVector,
    estimate_delivery_time,
    sleds_pick_finish,
    sleds_pick_init,
    sleds_pick_next_read,
    sleds_total_delivery_time,
)
from repro.kernel import FSLEDS_FILL, FSLEDS_GET, Kernel
from repro.machine import Machine, MachineConfig

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "MachineConfig",
    "Kernel",
    "Sled",
    "SledVector",
    "SledTable",
    "FSLEDS_FILL",
    "FSLEDS_GET",
    "sleds_pick_init",
    "sleds_pick_next_read",
    "sleds_pick_finish",
    "sleds_total_delivery_time",
    "estimate_delivery_time",
    "SLEDS_LINEAR",
    "SLEDS_BEST",
    "__version__",
]
