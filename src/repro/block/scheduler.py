"""Block-layer I/O request scheduling.

The paper points at disk-scheduling work (Worthington et al. [WGP94]) as a
way to "enhance the accuracy of SLEDs"; our substrate uses a scheduler
wherever the kernel has a *batch* of requests in hand — most importantly
the writeback path, where dirty pages from many files flush together.  A
good order turns a scattered batch into few long sweeps; FCFS turns it
into a seek storm.

Schedulers order a batch given the device's current head position;
execution stays in the device models (which charge seek/rotation per the
resulting address sequence).

* :class:`FcfsScheduler` — submission order (the null scheduler).
* :class:`SstfScheduler` — greedy shortest-seek-first from the head.
* :class:`ClookScheduler` — circular LOOK: ascending addresses starting
  at the head position, wrapping once (Linux-style elevator behaviour).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.sim.errors import InvalidArgumentError


@dataclass(frozen=True)
class IoRequest:
    """One block-layer request."""

    addr: int
    nbytes: int
    is_write: bool = False
    tag: object = None  # opaque caller context (inode, page range, ...)

    def __post_init__(self) -> None:
        if self.addr < 0 or self.nbytes <= 0:
            raise InvalidArgumentError(
                f"bad request: addr={self.addr}, nbytes={self.nbytes}")

    @property
    def end(self) -> int:
        return self.addr + self.nbytes


class IoScheduler(ABC):
    """Order a batch of requests for one device."""

    name = "abstract"

    @abstractmethod
    def order(self, requests: list[IoRequest],
              head_pos: int) -> list[IoRequest]:
        """Return the requests in service order (a permutation)."""


class FcfsScheduler(IoScheduler):
    """First come, first served."""

    name = "fcfs"

    def order(self, requests: list[IoRequest],
              head_pos: int) -> list[IoRequest]:
        return list(requests)


class SstfScheduler(IoScheduler):
    """Greedy shortest seek time first."""

    name = "sstf"

    def order(self, requests: list[IoRequest],
              head_pos: int) -> list[IoRequest]:
        remaining = list(requests)
        out: list[IoRequest] = []
        pos = head_pos
        while remaining:
            nearest = min(remaining, key=lambda r: abs(r.addr - pos))
            remaining.remove(nearest)
            out.append(nearest)
            pos = nearest.end
        return out


class ClookScheduler(IoScheduler):
    """Circular LOOK: sweep upward from the head, wrap to the lowest."""

    name = "clook"

    def order(self, requests: list[IoRequest],
              head_pos: int) -> list[IoRequest]:
        ahead = sorted((r for r in requests if r.addr >= head_pos),
                       key=lambda r: r.addr)
        behind = sorted((r for r in requests if r.addr < head_pos),
                        key=lambda r: r.addr)
        return ahead + behind


SCHEDULERS = {
    "fcfs": FcfsScheduler,
    "sstf": SstfScheduler,
    "clook": ClookScheduler,
}


def make_scheduler(name: str) -> IoScheduler:
    """Build a scheduler by name (``fcfs``, ``sstf``, ``clook``)."""
    try:
        factory = SCHEDULERS[name.lower()]
    except KeyError:
        raise InvalidArgumentError(
            f"unknown I/O scheduler {name!r}; "
            f"choose from {sorted(SCHEDULERS)}") from None
    return factory()


def submit_batch(device, requests: list[IoRequest],
                 scheduler: IoScheduler) -> float:
    """Service a batch in scheduler order; returns total virtual seconds.

    The device's own model charges each access given the order, so the
    scheduler's quality shows up directly as seek/rotation time.
    """
    total = 0.0
    for request in scheduler.order(requests, getattr(device, "head_pos", 0)):
        if request.is_write:
            total += device.write(request.addr, request.nbytes)
        else:
            total += device.read(request.addr, request.nbytes)
    return total
