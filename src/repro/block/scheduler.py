"""Block-layer I/O request scheduling.

The paper points at disk-scheduling work (Worthington et al. [WGP94]) as a
way to "enhance the accuracy of SLEDs"; our substrate uses a scheduler
wherever the kernel has a *batch* of requests in hand — most importantly
the writeback path, where dirty pages from many files flush together.  A
good order turns a scattered batch into few long sweeps; FCFS turns it
into a seek storm.

Schedulers order a batch given the device's current head position;
execution stays in the device models (which charge seek/rotation per the
resulting address sequence).

* :class:`FcfsScheduler` — submission order (the null scheduler).
* :class:`SstfScheduler` — greedy shortest-seek-first from the head.
* :class:`ClookScheduler` — circular LOOK: ascending addresses starting
  at the head position, wrapping once (Linux-style elevator behaviour).
* :class:`FairScheduler` — CFQ-style per-tenant service budgets (deficit
  round robin by bytes) layered over any position policy, so one
  streaming tenant cannot starve everyone else's queue.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass

from repro.sim.errors import InvalidArgumentError


@dataclass(frozen=True, slots=True)
class DispatchRecord:
    """One entry of a device queue's bounded dispatch history.

    The forensic substrate (:mod:`repro.obs.forensics`) reconstructs a
    request's queue-wait window from these: who occupied the device
    between another request's submission and its service start, and for
    how long.  ``rid`` is the queue-local submission sequence number;
    ``kind`` is the request's provenance (``fault`` / ``prefetch`` /
    ``writeback`` / ``io``); ``start``/``finish`` bound the service
    interval in virtual seconds.  Entries are appended at dispatch time,
    so cancelled requests never appear and a coalesced group appears
    once (the union request, under the primary member's kind/tenant).
    """

    rid: int
    kind: str
    label: str
    tenant: str | None
    is_write: bool
    nbytes: int
    submit_time: float
    start: float
    finish: float

    def to_dict(self) -> dict:
        return {
            "rid": self.rid, "kind": self.kind, "label": self.label,
            "tenant": self.tenant, "is_write": self.is_write,
            "nbytes": self.nbytes, "submit_time": self.submit_time,
            "start": self.start, "finish": self.finish,
        }


@dataclass(frozen=True)
class IoRequest:
    """One block-layer request."""

    addr: int
    nbytes: int
    is_write: bool = False
    tag: object = None  # opaque caller context (inode, page range, ...)
    #: owning tenant for QoS accounting; None = untenanted (the default)
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.addr < 0 or self.nbytes <= 0:
            raise InvalidArgumentError(
                f"bad request: addr={self.addr}, nbytes={self.nbytes}")

    @property
    def end(self) -> int:
        return self.addr + self.nbytes


class IoScheduler(ABC):
    """Order a batch of requests for one device.

    Two entry points: :meth:`order` ranks a whole batch against one head
    position (legacy / analysis), while :meth:`take_next` removes and
    returns the single best request given the *live* head — the online
    form both the batch executor and the event-driven
    :class:`DeviceQueue` use, re-consulting the device between requests.
    """

    name = "abstract"
    #: True when each DeviceQueue needs its own instance (stateful
    #: schedulers); stateless position policies are safely shared
    per_device = False
    #: True when the scheduler differentiates by request tenant — the
    #: kernel folds the current tenant into SLED stamps only then
    tenant_aware = False

    def clone(self) -> IoScheduler:
        """A per-device instance; stateless schedulers return self."""
        return self

    @abstractmethod
    def order(self, requests: list[IoRequest],
              head_pos: int) -> list[IoRequest]:
        """Return the requests in service order (a permutation)."""

    def take_next(self, pending: list[IoRequest],
                  head_pos: int) -> IoRequest:
        """Remove and return the next request to service from ``pending``.

        The default defers to :meth:`order`; concrete schedulers override
        with an O(n) selection.  ``pending`` must be non-empty.
        """
        request = self.order(pending, head_pos)[0]
        pending.remove(request)
        return request


class FcfsScheduler(IoScheduler):
    """First come, first served."""

    name = "fcfs"

    def order(self, requests: list[IoRequest],
              head_pos: int) -> list[IoRequest]:
        return list(requests)

    def take_next(self, pending: list[IoRequest],
                  head_pos: int) -> IoRequest:
        return pending.pop(0)


class SstfScheduler(IoScheduler):
    """Greedy shortest seek time first.

    Ties (two requests equidistant from the head) break toward the lower
    address, so service order is a pure function of (pending set, head) —
    never of list construction order — and repeated runs are bit-identical.
    """

    name = "sstf"

    @staticmethod
    def _key(head_pos: int):
        return lambda r: (abs(r.addr - head_pos), r.addr)

    def order(self, requests: list[IoRequest],
              head_pos: int) -> list[IoRequest]:
        remaining = list(requests)
        out: list[IoRequest] = []
        pos = head_pos
        while remaining:
            nearest = min(remaining, key=self._key(pos))
            remaining.remove(nearest)
            out.append(nearest)
            pos = nearest.end
        return out

    def take_next(self, pending: list[IoRequest],
                  head_pos: int) -> IoRequest:
        nearest = min(pending, key=self._key(head_pos))
        pending.remove(nearest)
        return nearest


class ClookScheduler(IoScheduler):
    """Circular LOOK: sweep upward from the head, wrap to the lowest."""

    name = "clook"

    def order(self, requests: list[IoRequest],
              head_pos: int) -> list[IoRequest]:
        ahead = sorted((r for r in requests if r.addr >= head_pos),
                       key=lambda r: r.addr)
        behind = sorted((r for r in requests if r.addr < head_pos),
                        key=lambda r: r.addr)
        return ahead + behind

    def take_next(self, pending: list[IoRequest],
                  head_pos: int) -> IoRequest:
        ahead = [r for r in pending if r.addr >= head_pos]
        pool = ahead if ahead else pending  # wrap to the lowest address
        best = min(pool, key=lambda r: r.addr)
        pending.remove(best)
        return best


#: tenant key used internally for untenanted requests in the DRR ring
_NO_TENANT = ""


class FairScheduler(IoScheduler):
    """Budget-based fair queueing across tenants (deficit round robin).

    Tenants take turns in first-arrival order; each visit to a tenant
    grants it ``quantum_bytes`` of service credit, and the tenant's
    position-best request (chosen by the ``inner`` elevator — clook by
    default) is served while its accumulated deficit covers the request
    size.  Large recalls therefore cost their owner several turns instead
    of monopolising the device: the max/min per-tenant service share over
    any backlogged interval is bounded, CFQ-style.

    The scheduler is *stateful* (deficits, round-robin cursor), so each
    :class:`DeviceQueue` clones its own instance (``per_device``).  When
    every pending request is untenanted — or a single tenant has the
    device to itself — selection delegates straight to the inner policy,
    which makes the untenanted fast path bit-identical to running the
    inner elevator alone.
    """

    name = "fair"
    per_device = True
    tenant_aware = True

    def __init__(self, inner: str | IoScheduler = "clook",
                 quantum_bytes: int = 256 * 1024) -> None:
        if quantum_bytes <= 0:
            raise InvalidArgumentError(
                f"quantum_bytes must be positive: {quantum_bytes}")
        self.inner = (make_scheduler(inner) if isinstance(inner, str)
                      else inner)
        if self.inner.per_device:  # pragma: no cover - defensive
            raise InvalidArgumentError(
                f"inner policy {self.inner.name!r} is stateful; "
                "layer fair over a position policy (fcfs/sstf/clook)")
        self.quantum_bytes = quantum_bytes
        self._deficits: dict[str, float] = {}
        self._ring: list[str] = []
        self._cursor = 0
        #: cumulative bytes served per tenant (observability / tests)
        self.served_bytes: dict[str, int] = {}

    def clone(self) -> FairScheduler:
        return FairScheduler(inner=self.inner,
                             quantum_bytes=self.quantum_bytes)

    @staticmethod
    def _tenant_key(request: IoRequest) -> str:
        return request.tenant if request.tenant is not None else _NO_TENANT

    def order(self, requests: list[IoRequest],
              head_pos: int) -> list[IoRequest]:
        # simulate a full drain on a fresh clone so analysis-order calls
        # never disturb the live deficits
        sim = self.clone()
        pending = list(requests)
        out: list[IoRequest] = []
        pos = head_pos
        while pending:
            request = sim.take_next(pending, pos)
            out.append(request)
            pos = request.end
        return out

    def take_next(self, pending: list[IoRequest],
                  head_pos: int) -> IoRequest:
        tenants = {self._tenant_key(r) for r in pending}
        if len(tenants) == 1:
            # untenanted or single-tenant: pure position policy; drop any
            # stale DRR state so the next contended period starts fresh
            if self._ring:
                self._ring.clear()
                self._deficits.clear()
                self._cursor = 0
            request = self.inner.take_next(pending, head_pos)
            key = self._tenant_key(request)
            if key != _NO_TENANT:
                self.served_bytes[key] = (
                    self.served_bytes.get(key, 0) + request.nbytes)
            return request
        for request in pending:  # ring membership in first-arrival order
            key = self._tenant_key(request)
            if key not in self._deficits:
                self._deficits[key] = 0.0
                self._ring.append(key)
        while True:
            if self._cursor >= len(self._ring):
                self._cursor = 0
            tenant = self._ring[self._cursor]
            mine = [r for r in pending if self._tenant_key(r) == tenant]
            if not mine:
                # drained tenant: leave the ring, deficit resets (DRR)
                self._ring.pop(self._cursor)
                del self._deficits[tenant]
                continue
            candidate = self.inner.take_next(mine, head_pos)
            if self._deficits[tenant] >= candidate.nbytes:
                self._deficits[tenant] -= candidate.nbytes
                pending.remove(candidate)
                if tenant != _NO_TENANT:
                    self.served_bytes[tenant] = (
                        self.served_bytes.get(tenant, 0) + candidate.nbytes)
                return candidate
            self._deficits[tenant] += self.quantum_bytes
            self._cursor += 1


SCHEDULERS = {
    "fcfs": FcfsScheduler,
    "sstf": SstfScheduler,
    "clook": ClookScheduler,
    "fair": FairScheduler,
}


def make_scheduler(name: str) -> IoScheduler:
    """Build a scheduler by name (``fcfs``, ``sstf``, ``clook``,
    ``fair``, or ``fair:<inner>`` to pick the fair elevator's position
    policy, e.g. ``fair:sstf``)."""
    lowered = name.lower()
    if lowered.startswith("fair:"):
        return FairScheduler(inner=lowered.partition(":")[2])
    try:
        factory = SCHEDULERS[lowered]
    except KeyError:
        raise InvalidArgumentError(
            f"unknown I/O scheduler {name!r}; "
            f"choose from {sorted(SCHEDULERS)}") from None
    return factory()


def submit_batch(device, requests: list[IoRequest],
                 scheduler: IoScheduler) -> float:
    """Service a batch in scheduler order; returns total virtual seconds.

    The next request is chosen against the device's *live* head position
    (the :meth:`~repro.devices.base.Device.head_position` protocol, not a
    one-shot snapshot), so schedulers see exactly the seek they are about
    to cause — writes that park the head elsewhere, or devices whose
    position moves differently than ``request.end``, no longer desync the
    plan from the hardware.  The device's own model charges each access,
    so scheduler quality shows up directly as seek/rotation time.
    """
    total = 0.0
    pending = list(requests)
    while pending:
        request = scheduler.take_next(pending, device.head_position())
        if request.is_write:
            total += device.write(request.addr, request.nbytes)
        else:
            total += device.read(request.addr, request.nbytes)
    return total


class DeviceQueue:
    """An online per-device elevator driven by the event loop.

    Requests arrive over virtual time from concurrently running tasks;
    whenever the device frees up the queue picks the next request against
    the live head position using its :class:`IoScheduler` — the same
    elevator the batch writeback path uses, now applied *between* tasks
    instead of within one batch.

    Two service forms coexist:

    * plain requests (``service=None``) are executed via
      :meth:`Device.submit` at dispatch time;
    * requests with a ``service`` thunk (filesystem-mediated clusters:
      HSM staging, NFS server caches) call the thunk at dispatch time —
      it returns the service duration after mutating whatever filesystem
      state the synchronous path would have mutated, so custom read paths
      keep their exact semantics and RNG draw order.

    ``congestion_epoch`` increments on every arrival and completion; the
    kernel folds it into the SLED cache stamp so queue churn invalidates
    queue-aware delivery estimates.

    ``history`` bounds the dispatch-history ring: every dispatched
    request leaves a :class:`DispatchRecord` (who held the device, when,
    for whom) that :meth:`recent_dispatches` exposes to the forensic
    blame engine.  Pure bookkeeping — appending never touches the clock
    or RNG, so runs stay bit-identical whether anyone reads it or not.
    """

    def __init__(self, device, loop, scheduler: IoScheduler,
                 history: int = 4096) -> None:
        self.device = device
        self.loop = loop
        # stateful schedulers (the fair elevator) get one instance per
        # device so deficits never leak across devices
        self.scheduler = scheduler.clone() if scheduler.per_device else scheduler
        self._pending: list[IoRequest] = []
        self._entries: dict[object, tuple] = {}
        self._seq = 0
        self._busy = False
        self._inflight_finish = 0.0
        #: monotonic counter over queue-state changes (submit/complete)
        self.congestion_epoch = 0
        self.depth_high_water = 0
        self.total_queue_wait = 0.0
        self.dispatched = 0
        #: bounded ring of DispatchRecords, oldest evicted first
        self._history: deque[DispatchRecord] = deque(maxlen=max(0, history))
        #: dispatch-history entries evicted by the ring bound
        self.history_dropped = 0
        #: optional hooks: on_queued(depth), on_dispatched(wait, depth),
        #: on_completed(depth)
        self.on_queued = None
        self.on_dispatched = None
        self.on_completed = None

    @property
    def depth(self) -> int:
        """Outstanding requests (queued + in service)."""
        return len(self._pending) + (1 if self._busy else 0)

    def submit(self, addr: int, nbytes: int, is_write: bool,
               service=None, label: str = "",
               submit_time: float | None = None,
               tenant: str | None = None, kind: str = "io"):
        """Enqueue one request; returns an IoFuture resolving to its
        :class:`~repro.devices.base.Completion`.

        ``submit_time`` backdates the request's arrival (default: now) —
        the plug/merge stage passes the original arrival time of a held
        request so the time spent plugged shows up as queue wait, keeping
        the lifecycle latency identity exact.  ``tenant`` attributes the
        request to a QoS class for tenant-aware schedulers.  ``kind``
        names the request's provenance in the dispatch history (``fault``
        / ``prefetch`` / ``writeback``; default ``io`` for raw submits).
        """
        from repro.sim.events import IoFuture

        now = self.loop.clock.now
        if submit_time is None:
            submit_time = now
        future = IoFuture(label or f"{self.device.name}@{addr}")
        tag = self._seq
        self._seq += 1
        request = IoRequest(addr=addr, nbytes=nbytes, is_write=is_write,
                            tag=tag, tenant=tenant)
        self._entries[tag] = (future, submit_time, service, kind, label)
        self._pending.append(request)
        self.congestion_epoch += 1
        self.depth_high_water = max(self.depth_high_water, self.depth)
        if self.on_queued is not None:
            self.on_queued(self.depth)
        if not self._busy:
            self._dispatch()
        return future

    def cancel(self, future) -> bool:
        """Withdraw a queued-but-not-dispatched request.

        Finds the pending request whose waiter is ``future``; removes it
        and resolves the future with ``None`` (so waiters wake rather than
        wedge — the prefetcher reads a ``None`` completion as "cancelled").
        Returns False when the request already dispatched, completed, or
        was never here; in-service requests always run to completion.
        """
        for tag, entry in self._entries.items():
            if entry[0] is future:
                break
        else:
            return False
        del self._entries[tag]
        self._pending = [r for r in self._pending if r.tag != tag]
        self.congestion_epoch += 1
        future.resolve(None)
        return True

    def estimated_delay(self, now: float, tenant: str | None = None) -> float:
        """Seconds a request arriving now would wait before service:
        the in-flight remainder plus a nominal-spec estimate of every
        queued request — the queue-aware term SLEDs fold into latency.

        Under a tenant-aware scheduler a tenant's request does *not* wait
        behind other tenants' whole backlogs — only behind its own queue
        plus roughly one service quantum per competing tenant — so the
        per-class prediction reflects the fair elevator's isolation.
        """
        delay = max(0.0, self._inflight_finish - now) if self._busy else 0.0
        spec = self.device.spec
        if tenant is None or not self.scheduler.tenant_aware:
            for request in self._pending:
                delay += spec.latency + request.nbytes / spec.bandwidth
            return delay
        quantum = getattr(self.scheduler, "quantum_bytes", 256 * 1024)
        others: set[str | None] = set()
        for request in self._pending:
            if request.tenant == tenant:
                delay += spec.latency + request.nbytes / spec.bandwidth
            else:
                others.add(request.tenant)
        delay += len(others) * (spec.latency + quantum / spec.bandwidth)
        return delay

    def recent_dispatches(self) -> tuple[DispatchRecord, ...]:
        """The bounded dispatch history, oldest first.  Cancelled
        requests never dispatched, so they are absent; a merged group
        appears as its one union request."""
        return tuple(self._history)

    def _dispatch(self) -> None:
        from repro.devices.base import Completion

        request = self.scheduler.take_next(
            self._pending, self.device.head_position())
        future, submit_time, service, kind, label = \
            self._entries.pop(request.tag)
        now = self.loop.clock.now
        wait = now - submit_time
        self.total_queue_wait += wait
        if wait > 0.0:
            self.device.stats.queue_wait_time += wait
            self.device.stats.queued_requests += 1
        try:
            if service is not None:
                duration = service()
                completion = Completion.new(
                    device_name=self.device.name, addr=request.addr,
                    nbytes=request.nbytes, is_write=request.is_write,
                    submit_time=submit_time, start_time=now,
                    duration=duration)
            else:
                # freshly built and solely owned: backdate in place rather
                # than allocating a copy
                completion = self.device.submit(request.addr, request.nbytes,
                                                request.is_write, now=now)
                completion.submit_time = submit_time
        except Exception as exc:
            # a failed request must not wedge the queue: report it to the
            # waiter and keep servicing (real controllers do the same)
            self.congestion_epoch += 1
            future.fail(exc)
            if self._pending:
                self._dispatch()
            return
        self._busy = True
        self._inflight_finish = completion.finish_time
        self.dispatched += 1
        if self._history.maxlen:
            if len(self._history) == self._history.maxlen:
                self.history_dropped += 1
            self._history.append(DispatchRecord(
                rid=request.tag, kind=kind, label=label,
                tenant=request.tenant, is_write=request.is_write,
                nbytes=request.nbytes, submit_time=submit_time,
                start=now, finish=completion.finish_time))
        if self.on_dispatched is not None:
            self.on_dispatched(wait, self.depth)
        self.loop.at(completion.finish_time,
                     lambda: self._complete(future, completion),
                     category=self.device.time_category)

    def _complete(self, future, completion) -> None:
        self._busy = False
        self.congestion_epoch += 1
        if self.on_completed is not None:
            self.on_completed(self.depth)
        future.resolve(completion)
        if self._pending:
            self._dispatch()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<DeviceQueue {self.device.name!r} depth={self.depth} "
                f"epoch={self.congestion_epoch}>")
