"""Block-layer request coalescing and plugged batch dispatch.

The engine's per-device queues (PR 3) gave us an online elevator, but
every fault cluster still went to the device as its own request — adjacent
faults, whether from one ``pread`` loop or from concurrent tasks walking
the same file, each paid the per-request controller / RPC / positioning
overhead a real block layer would merge away.  This module adds the two
classic mechanisms between the kernel fault path and the
:class:`~repro.block.scheduler.DeviceQueue`:

* **coalescing** — pending requests on the same device whose page runs
  are adjacent or overlapping merge into one multi-page transfer,
  serviced as a single device command
  (:meth:`~repro.devices.base.Device.submit_spans`), with per-class merge
  windows: aggressive for tape/CD-ROM (huge positioning costs justify
  reading through page gaps), bounded for disk, off for memory;
* **plugging** — a :class:`PlugQueue` holds arriving requests for a short
  virtual-time window (or until a depth/byte threshold) before flushing
  the batch to the elevator, so concurrent tasks' faults actually meet
  and merge.  With plugging off but merging on, the window is zero: the
  plug flushes at the next event-loop step, which still batches requests
  submitted within one scheduler slice (Linux's unplug-on-schedule).

Both default **off** (:class:`BlockConfig`); an all-default config keeps
the engine bit-identical to one with no block stage at all.  Time spent
plugged is passed to the elevator as a backdated ``submit_time``, so it
appears as queue wait and the lifecycle identity
``fsum([queue_wait, *components]) == latency`` stays exact.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.sim.events import IoFuture
from repro.sim.units import KB, MB, MSEC, PAGE_SIZE


@dataclass(frozen=True)
class MergeClassPolicy:
    """Per-device-class merge window.

    ``max_bytes`` caps the merged union (0 disables merging for the
    class); ``max_gap_pages`` is the largest forward page gap two runs may
    bridge — the union reads through the gap, trading transfer time for a
    saved positioning, which only pays on devices where positioning
    dwarfs streaming (CD-ROM settle, tape locate).
    """

    max_bytes: int
    max_gap_pages: int = 0

    def __post_init__(self) -> None:
        if self.max_bytes < 0:
            raise ValueError(f"negative max_bytes: {self.max_bytes}")
        if self.max_gap_pages < 0:
            raise ValueError(f"negative max_gap_pages: {self.max_gap_pages}")


#: Default merge windows per ``Device.time_category``.  Unlisted classes
#: (memory, flash) do not merge.
DEFAULT_MERGE_POLICIES = {
    "disk": MergeClassPolicy(max_bytes=512 * KB, max_gap_pages=0),
    "nfs": MergeClassPolicy(max_bytes=1 * MB, max_gap_pages=0),
    "cdrom": MergeClassPolicy(max_bytes=4 * MB, max_gap_pages=32),
    "tape": MergeClassPolicy(max_bytes=32 * MB, max_gap_pages=1024),
}

#: Sentinel policy for classes with no entry: merging off.
_NO_MERGE = MergeClassPolicy(max_bytes=0, max_gap_pages=0)


@dataclass(frozen=True)
class BlockConfig:
    """Block-layer front-end configuration (everything defaults off).

    ``merge`` enables request coalescing, ``plug`` enables the virtual-
    time accumulation window.  ``plug_window`` is how long a plug holds
    its first request before flushing; ``plug_max_requests`` /
    ``plug_max_bytes`` flush early when the batch is already worth
    dispatching.  ``merge_policies`` maps ``Device.time_category`` to a
    :class:`MergeClassPolicy`.
    """

    merge: bool = False
    plug: bool = False
    plug_window: float = 0.3 * MSEC
    plug_max_requests: int = 32
    plug_max_bytes: int = 2 * MB
    merge_policies: dict = field(
        default_factory=lambda: dict(DEFAULT_MERGE_POLICIES))

    @property
    def active(self) -> bool:
        """Whether the block front-end intercepts fault submissions at
        all; False routes faults straight to the device queues."""
        return self.merge or self.plug

    def policy_for(self, device) -> MergeClassPolicy:
        """The merge window for ``device``'s class (off when unlisted)."""
        return self.merge_policies.get(device.time_category, _NO_MERGE)


@dataclass
class FaultRun:
    """One fault cluster held in a plug, waiting to be batched."""

    fs: object
    inode: object
    page: int
    cluster: int
    addr: int
    nbytes: int
    future: IoFuture
    submit_time: float
    seq: int
    #: owning tenant; merge groups never span tenants, so one tenant's
    #: QoS class can't smuggle bytes through another's merged request
    tenant: str | None = None
    #: True for prefetcher-issued runs — the dispatch history records
    #: them as ``prefetch`` so blame can name speculative interference
    speculative: bool = False

    @property
    def end_page(self) -> int:
        return self.page + self.cluster


@dataclass(frozen=True, slots=True)
class HoldRecord:
    """Hold-time provenance for one request that passed through a plug.

    Recorded when the plug releases the request to the elevator:
    ``unplug_time - submit_time`` is the plug/merge-induced hold, the
    slice of the request's queue wait during which it had not even
    reached the device queue.  For a coalesced group one record covers
    the union request (``page``/``cluster`` are the union run,
    ``submit_time`` the primary member's arrival, ``members`` the group
    size); the forensic blame engine keys on
    ``(fs, inode, page, cluster, submit_time)`` to match the lifecycle
    record the union produced.
    """

    fs: str
    inode: int
    page: int
    cluster: int
    tenant: str | None
    submit_time: float
    unplug_time: float
    members: int

    @property
    def key(self) -> tuple:
        return (self.fs, self.inode, self.page, self.cluster,
                self.submit_time)

    @property
    def held(self) -> float:
        return self.unplug_time - self.submit_time


def plain_read_path(fs) -> bool:
    """Whether ``fs`` reads through the stock ``FileSystem.read_pages``.

    Stateful read paths (HSM staging picks drives, mounts cartridges and
    stages to disk per run) cannot be collapsed into one device command —
    such filesystems still plug, but never multi-merge.
    """
    from repro.fs.filesystem import FileSystem

    return type(fs).read_pages is FileSystem.read_pages


class PlugQueue:
    """The plug in front of one device's elevator.

    Fault clusters arrive via :meth:`submit` and are held until the plug
    flushes — on the virtual-time window expiring, or a depth/byte
    threshold, or an explicit :meth:`flush`.  The flush coalesces the
    batch into merge groups and submits each group to the underlying
    :class:`~repro.block.scheduler.DeviceQueue` with the *earliest*
    member's arrival time, so plugged time surfaces as ordinary queue
    wait.

    ``service_factory(fs, inode, page, cluster, merged)`` builds the
    dispatch-time service thunk (the engine supplies its traced
    ``read_pages`` / ``read_pages_merged`` wrapper).
    """

    def __init__(self, device, queue, loop, config: BlockConfig,
                 service_factory) -> None:
        self.device = device
        self.queue = queue
        self.loop = loop
        self.config = config
        self.policy = config.policy_for(device)
        self._service_factory = service_factory
        self._plugged: list[FaultRun] = []
        self._plugged_bytes = 0
        self._timer = None
        self._seq = 0
        #: requests eliminated by merging (members beyond each primary)
        self.merged_requests = 0
        #: union bytes submitted by multi-member groups
        self.merged_bytes = 0
        self.flushes = 0
        self.plug_wait_total = 0.0
        #: bounded ring of HoldRecords (hold-time provenance for blame)
        self._holds: deque[HoldRecord] = deque(maxlen=4096)
        #: per-tenant intake accounting (requests / bytes through the plug)
        self.tenant_requests: dict[str, int] = {}
        self.tenant_bytes: dict[str, int] = {}
        #: optional hooks: on_merge(members, nbytes), on_plug(wait, batch)
        self.on_merge = None
        self.on_plug = None

    @property
    def depth(self) -> int:
        """Requests currently held in the plug."""
        return len(self._plugged)

    # -- intake ----------------------------------------------------------

    def submit(self, fs, inode, page: int, cluster: int,
               tenant: str | None = None,
               speculative: bool = False) -> IoFuture:
        """Hold one fault cluster; returns the future its task blocks on."""
        now = self.loop.clock.now
        future = IoFuture(f"plug:{fs.name}:{inode.id}:{page}+{cluster}")
        run = FaultRun(fs=fs, inode=inode, page=page, cluster=cluster,
                       addr=inode.extent_map.addr_of(page),
                       nbytes=cluster * PAGE_SIZE, future=future,
                       submit_time=now, seq=self._seq, tenant=tenant,
                       speculative=speculative)
        self._seq += 1
        if tenant is not None:
            self.tenant_requests[tenant] = (
                self.tenant_requests.get(tenant, 0) + 1)
            self.tenant_bytes[tenant] = (
                self.tenant_bytes.get(tenant, 0) + run.nbytes)
        self._plugged.append(run)
        self._plugged_bytes += run.nbytes
        # plug churn invalidates queue-aware SLED estimates, same as
        # elevator churn
        self.queue.congestion_epoch += 1
        if (len(self._plugged) >= self.config.plug_max_requests
                or self._plugged_bytes >= self.config.plug_max_bytes):
            self.flush()
        elif self._timer is None:
            window = self.config.plug_window if self.config.plug else 0.0
            self._timer = self.loop.after(window, self.flush)
        return future

    def cancel(self, future: IoFuture) -> bool:
        """Withdraw a still-plugged request; resolves its future with
        ``None`` (the cancelled sentinel).  False if not held here."""
        for index, run in enumerate(self._plugged):
            if run.future is future:
                del self._plugged[index]
                self._plugged_bytes -= run.nbytes
                self.queue.congestion_epoch += 1
                future.resolve(None)
                return True
        return False

    def estimated_delay(self) -> float:
        """Nominal-spec service estimate of everything still plugged —
        the term queue-aware SLEDs add on top of the elevator's."""
        spec = self.device.spec
        return sum(spec.latency + run.nbytes / spec.bandwidth
                   for run in self._plugged)

    # -- flush -----------------------------------------------------------

    def flush(self) -> None:
        """Coalesce the held batch and hand it to the elevator."""
        if self._timer is not None:
            self.loop.cancel(self._timer)
            self._timer = None
        if not self._plugged:
            return
        profiler = self.loop.profiler
        t0 = profiler.begin() if profiler is not None else 0.0
        batch = self._plugged
        self._plugged = []
        self._plugged_bytes = 0
        self.flushes += 1
        now = self.loop.clock.now
        for run in batch:
            wait = now - run.submit_time
            self.plug_wait_total += wait
            if self.on_plug is not None:
                self.on_plug(wait, len(batch))
        for group in self._coalesce(batch):
            self._dispatch_group(group)
        if profiler is not None:
            profiler.add("block.merge_flush", t0)

    def _coalesce(self, batch: list[FaultRun]) -> list[list[FaultRun]]:
        """Partition a flushed batch into merge groups.

        Grouping is per (inode, tenant) — merging across files would
        interleave unrelated extents, and merging across tenants would
        let one QoS class ride (and bill) another's request; keys are
        visited in first-appearance order and runs page-sorted with the
        submission sequence as tie-break, so the grouping is a pure
        function of the batch — deterministic across runs.
        """
        if not self.config.merge or self.policy.max_bytes <= 0:
            return [[run] for run in batch]
        by_inode: dict[tuple, list[FaultRun]] = {}
        order: list[tuple] = []
        for run in batch:
            key = (run.inode.id, run.tenant)
            if key not in by_inode:
                by_inode[key] = []
                order.append(key)
            by_inode[key].append(run)
        groups: list[list[FaultRun]] = []
        for key in order:
            runs = sorted(by_inode[key], key=lambda r: (r.page, r.seq))
            if not plain_read_path(runs[0].fs):
                groups.extend([run] for run in runs)
                continue
            group = [runs[0]]
            union_start, union_end = runs[0].page, runs[0].end_page
            for run in runs[1:]:
                new_end = max(union_end, run.end_page)
                union_bytes = (new_end - union_start) * PAGE_SIZE
                if (run.page <= union_end + self.policy.max_gap_pages
                        and union_bytes <= self.policy.max_bytes):
                    group.append(run)
                    union_end = new_end
                else:
                    groups.append(group)
                    group = [run]
                    union_start, union_end = run.page, run.end_page
            groups.append(group)
        return groups

    def recent_dispatched_holds(self) -> tuple[HoldRecord, ...]:
        """Hold-time provenance of requests already released to the
        elevator, oldest first (bounded)."""
        return tuple(self._holds)

    def _record_hold(self, fs, inode, page: int, cluster: int,
                     tenant: str | None, submit_time: float,
                     members: int) -> None:
        self._holds.append(HoldRecord(
            fs=fs.name, inode=inode.id, page=page, cluster=cluster,
            tenant=tenant, submit_time=submit_time,
            unplug_time=self.loop.clock.now, members=members))

    def _dispatch_group(self, group: list[FaultRun]) -> None:
        if len(group) == 1:
            run = group[0]
            service = self._service_factory(run.fs, run.inode, run.page,
                                            run.cluster, False)
            self._record_hold(run.fs, run.inode, run.page, run.cluster,
                              run.tenant, run.submit_time, 1)
            inner = self.queue.submit(
                run.addr, run.nbytes, is_write=False, service=service,
                label=(f"fault:{run.fs.name}:{run.inode.id}:"
                       f"{run.page}+{run.cluster}"),
                submit_time=run.submit_time, tenant=run.tenant,
                kind="prefetch" if run.speculative else "fault")
            inner.add_done_callback(
                lambda f, r=run: self._settle_single(f, r))
            return
        # primary member: earliest arrival — the union request inherits
        # its submit time, and its completion carries the provenance
        members = sorted(group, key=lambda r: (r.submit_time, r.page,
                                               r.seq))
        primary = members[0]
        union_start = min(run.page for run in group)
        union_end = max(run.end_page for run in group)
        union_pages = union_end - union_start
        nbytes = union_pages * PAGE_SIZE
        fs, inode = primary.fs, primary.inode
        service = self._service_factory(fs, inode, union_start,
                                        union_pages, True)
        self.merged_requests += len(group) - 1
        self.merged_bytes += nbytes
        if self.on_merge is not None:
            self.on_merge(len(group), nbytes)
        self._record_hold(fs, inode, union_start, union_pages,
                          primary.tenant, primary.submit_time, len(group))
        inner = self.queue.submit(
            inode.extent_map.addr_of(union_start), nbytes, is_write=False,
            service=service,
            label=(f"merged:{fs.name}:{inode.id}:"
                   f"{union_start}+{union_pages}x{len(group)}"),
            submit_time=primary.submit_time, tenant=primary.tenant,
            kind="prefetch" if primary.speculative else "fault")
        merged_from = tuple((run.inode.id, run.page, run.cluster)
                            for run in sorted(group, key=lambda r: r.seq))
        inner.add_done_callback(
            lambda f: self._settle_group(f, members, merged_from))

    # -- settlement ------------------------------------------------------

    @staticmethod
    def _settle_single(inner: IoFuture, run: FaultRun) -> None:
        if inner.exception is not None:
            run.future.fail(inner.exception)
        else:
            # the inner value is the Completion, or None when the queued
            # request was cancelled — forward either verbatim
            run.future.resolve(inner._value)

    @staticmethod
    def _settle_group(inner: IoFuture, members: list[FaultRun],
                      merged_from: tuple) -> None:
        settle_order = sorted(members, key=lambda r: r.seq)
        if inner.exception is not None:
            for run in settle_order:
                run.future.fail(inner.exception)
            return
        completion = inner._value
        if completion is None:  # inner request cancelled
            for run in settle_order:
                run.future.resolve(None)
            return
        primary = members[0]
        for run in settle_order:
            if run is primary:
                run.future.resolve(completion.replace(
                    merged=True, merged_from=merged_from))
            else:
                run.future.resolve(completion.replace(
                    submit_time=run.submit_time, merged=True))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<PlugQueue {self.device.name!r} depth={self.depth} "
                f"merged={self.merged_requests}>")
