"""Block-layer substrate: request batching and I/O scheduling."""

from repro.block.scheduler import (
    ClookScheduler,
    FcfsScheduler,
    IoRequest,
    IoScheduler,
    SstfScheduler,
    make_scheduler,
    submit_batch,
)

__all__ = [
    "IoRequest",
    "IoScheduler",
    "FcfsScheduler",
    "SstfScheduler",
    "ClookScheduler",
    "make_scheduler",
    "submit_batch",
]
