"""Block-layer substrate: request batching, merging, and I/O scheduling."""

from repro.block.merge import (
    DEFAULT_MERGE_POLICIES,
    BlockConfig,
    MergeClassPolicy,
    PlugQueue,
)
from repro.block.scheduler import (
    ClookScheduler,
    FcfsScheduler,
    IoRequest,
    IoScheduler,
    SstfScheduler,
    make_scheduler,
    submit_batch,
)

__all__ = [
    "IoRequest",
    "IoScheduler",
    "FcfsScheduler",
    "SstfScheduler",
    "ClookScheduler",
    "make_scheduler",
    "submit_batch",
    "BlockConfig",
    "MergeClassPolicy",
    "PlugQueue",
    "DEFAULT_MERGE_POLICIES",
]
