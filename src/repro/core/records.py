"""Record-boundary adjustment of SLED vectors (paper Figure 4).

Applications interested in variable-sized records (lines of text) ask the
pick library for record-oriented SLEDs.  "The library prevents applications
from running over the edge of a low-latency SLED and causing data to be
fetched from higher-latency storage ... by pulling in the edges of the
SLEDs from page boundaries to record boundaries.  The leading and trailing
record fragments are pushed out to the neighboring SLEDs, which are higher
latency.  This requires the SLEDs library to perform some I/O itself to
find the record boundaries."

Concretely, for each boundary between two SLEDs of *different* latency:

* if the low-latency side precedes the boundary, its edge moves back to
  just after the last separator inside it (the trailing record fragment
  joins the high-latency neighbour);
* if the low-latency side follows the boundary, its edge moves forward to
  just after the first separator inside it (the leading fragment joins the
  high-latency neighbour).

Boundaries between equal-latency SLEDs and boundaries that already fall on
record edges are left alone.  The search I/O goes through ``kernel.pread``
— reading inside the low-latency SLED, which is by definition cheap.
"""

from __future__ import annotations

from repro.core.sled import Sled, SledVector

#: how far the library searches for a separator before giving up and
#: treating the whole SLED as a fragment
MAX_RECORD_SEARCH = 64 * 1024
_SEARCH_STEP = 4096


def _find_separator_backward(kernel, fd: int, lo: int, hi: int,
                             separator: bytes) -> int | None:
    """Offset of the last separator in ``[lo, hi)``, or None."""
    pos = hi
    while pos > lo and hi - pos < MAX_RECORD_SEARCH:
        start = max(lo, pos - _SEARCH_STEP)
        blob = kernel.pread(fd, start, pos - start)
        idx = blob.rfind(separator)
        if idx >= 0:
            return start + idx
        pos = start
    return None


def _find_separator_forward(kernel, fd: int, lo: int, hi: int,
                            separator: bytes) -> int | None:
    """Offset of the first separator in ``[lo, hi)``, or None."""
    pos = lo
    while pos < hi and pos - lo < MAX_RECORD_SEARCH:
        end = min(hi, pos + _SEARCH_STEP)
        blob = kernel.pread(fd, pos, end - pos)
        idx = blob.find(separator)
        if idx >= 0:
            return pos + idx
        pos = end
    return None


def adjust_to_records(kernel, fd: int, vector: SledVector,
                      separator: bytes = b"\n") -> SledVector:
    """Move SLED edges onto record boundaries; returns a new vector.

    The returned vector still covers the file exactly; only boundary
    positions move, and only toward the interior of low-latency SLEDs.
    """
    if len(separator) != 1:
        raise ValueError(
            f"record separator must be a single byte: {separator!r}")
    if len(vector) <= 1:
        return vector
    boundaries = [s.offset for s in vector][1:]  # interior boundaries
    sleds = list(vector)
    adjusted: list[int] = []
    for i, boundary in enumerate(boundaries):
        left, right = sleds[i], sleds[i + 1]
        if left.latency == right.latency:
            adjusted.append(boundary)
            continue
        if left.latency < right.latency:
            # Low-latency side precedes the boundary.  The alignment check
            # (is byte boundary-1 a separator?) and the backward search
            # both read only inside the cheap left sled.
            if kernel.pread(fd, boundary - 1, 1) == separator:
                adjusted.append(boundary)
                continue
            sep = _find_separator_backward(
                kernel, fd, left.offset, boundary, separator)
            adjusted.append(sep + 1 if sep is not None else left.offset)
        else:
            # Low-latency side follows.  Knowing whether the boundary is
            # already record-aligned would require reading byte boundary-1
            # from the *expensive* left sled — defeating the point — so the
            # library conservatively pushes the (possibly whole) leading
            # record out to the high-latency neighbour and searches only
            # inside the cheap right sled.
            sep = _find_separator_forward(
                kernel, fd, boundary, right.end, separator)
            adjusted.append(sep + 1 if sep is not None else right.end)
    # Rebuild sleds between [0, boundary_1, ..., file_size].  A separator-free
    # low-latency sled can make its two edges cross (the whole sled is one
    # record fragment); a running max resolves that by collapsing the sled to
    # zero length, absorbing it into the higher-latency neighbour — which is
    # exactly "fragments are pushed out to the neighboring SLEDs".
    edges = [0] + adjusted + [vector.file_size]
    for i in range(1, len(edges)):
        edges[i] = min(vector.file_size, max(edges[i], edges[i - 1]))
    out: list[Sled] = []
    for i, sled in enumerate(sleds):
        start, end = edges[i], edges[i + 1]
        if end > start:
            out.append(Sled(start, end - start, sled.latency, sled.bandwidth))
    return SledVector(out, file_size=vector.file_size)
