"""The SLEDs pick library (paper §4.2, Table 1).

Applications drive their reads through three routines::

    bufsize = sleds_pick_init(kernel, fd, preferred_bufsize)
    while True:
        nxt = sleds_pick_next_read(kernel, fd)
        if nxt is None:
            break
        offset, nbytes = nxt
        kernel.lseek(fd, offset)
        data = kernel.read(fd, nbytes)
        ...
    sleds_pick_finish(kernel, fd)

The library retrieves the SLED vector via the ``FSLEDS_GET`` ioctl at init
time, splits each SLED into chunks of at most the preferred buffer size,
and serves chunks lowest-latency-first, breaking ties by lowest file
offset — "in the simple case of a disk-based file system with a cold
cache, this algorithm will degenerate to linear access of the file."
Every byte of the file is returned exactly once.

``record_mode`` asks for record-oriented SLEDs (paper Figure 4): edges are
pulled in to record boundaries before chunking, at the cost of some
library I/O.  ``refresh_every`` re-fetches the SLED vector for the
*remaining* chunks every N picks — the paper notes the implementation
fetches only at init and that "refreshing the state of those SLEDs
occasionally would allow the library to take advantage of any changes in
state"; we implement both so the trade-off can be measured (Ext. C).

A session is keyed by ``(kernel id, fd)``, mirroring the C library's
per-descriptor hidden state.  An ``order`` argument exists purely for the
pick-order ablation (``"sleds"``, ``"linear"``, ``"random"``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.core.records import adjust_to_records
from repro.core.sled import SledVector
from repro.sim.errors import InvalidArgumentError
from repro.sim.units import USEC

#: CPU cost charged per pick decision — the paper attributes the small-file
#: slowdown of SLEDs grep to "the additional complexity of record
#: management ... and more data copying".
PICK_CPU_PER_CHUNK = 8.0 * USEC
INIT_CPU_PER_SLED = 2.0 * USEC

_VALID_ORDERS = ("sleds", "linear", "random")


@dataclass(order=True)
class _Chunk:
    sort_key: tuple[float, int] = field(init=False, repr=False)
    offset: int
    length: int
    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        self.sort_key = (self.latency, self.offset)


class SledsPickSession:
    """Hidden per-descriptor state of the pick library."""

    def __init__(self, kernel, fd: int, preferred_bufsize: int,
                 record_mode: bool = False, separator: bytes = b"\n",
                 refresh_every: int = 0, order: str = "sleds",
                 pin_cached: bool = False, prefetcher=None,
                 prefetch_depth: int = 4) -> None:
        if preferred_bufsize <= 0:
            raise InvalidArgumentError(
                f"preferred buffer size must be positive: {preferred_bufsize}")
        if order not in _VALID_ORDERS:
            raise InvalidArgumentError(
                f"unknown pick order {order!r}; choose from {_VALID_ORDERS}")
        if refresh_every < 0:
            raise InvalidArgumentError(
                f"refresh_every must be >= 0: {refresh_every}")
        if prefetch_depth < 1:
            raise InvalidArgumentError(
                f"prefetch_depth must be >= 1: {prefetch_depth}")
        self.kernel = kernel
        self.fd = fd
        self.bufsize = preferred_bufsize
        self.record_mode = record_mode
        self.separator = separator
        self.refresh_every = refresh_every
        self.order = order
        self.pin_cached = pin_cached
        self.prefetcher = prefetcher
        self.prefetch_depth = prefetch_depth
        self.picks = 0
        self._heap: list[_Chunk] = []
        self._pinned: set = set()
        #: kernel stamp of the last vector fetch; refreshes are skipped
        #: outright while it is unchanged (nothing the builder reads moved)
        self._stamp = None
        self._load_vector()
        if pin_cached:
            self._pin_cached_chunks()
        self._feed_prefetcher()

    # -- internals ------------------------------------------------------

    def _fetch_vector(self) -> SledVector:
        vector = self.kernel.get_sleds(self.fd)
        if self.record_mode:
            vector = adjust_to_records(
                self.kernel, self.fd, vector, self.separator)
        return vector

    def _load_vector(self) -> None:
        vector = self._fetch_vector()
        # stamped after the fetch: record_mode's boundary reads may
        # themselves change cache state, and the stamp must cover them
        self._stamp = self.kernel.sleds_stamp(self.fd)
        self.kernel.charge_cpu(len(vector) * INIT_CPU_PER_SLED)
        self._heap = self._chunks_from(vector)
        heapq.heapify(self._heap)

    def _chunks_from(self, vector: SledVector,
                     within: list[tuple[int, int]] | None = None) -> list[_Chunk]:
        """Split SLEDs into chunks <= bufsize, optionally clipped to the
        still-unread ``within`` spans."""
        chunks: list[_Chunk] = []
        for sled in vector:
            spans = ([(sled.offset, sled.end)] if within is None
                     else _clip_spans(within, sled.offset, sled.end))
            for lo, hi in spans:
                pos = lo
                while pos < hi:
                    take = min(self.bufsize, hi - pos)
                    chunks.append(_Chunk(offset=pos, length=take,
                                         latency=self._order_latency(sled),
                                         bandwidth=sled.bandwidth))
                    pos += take
        return chunks

    def _order_latency(self, sled) -> float:
        """Latency key under the configured pick order (ablation hook)."""
        if self.order == "sleds":
            return sled.latency
        if self.order == "linear":
            return 0.0  # all ties -> pure offset order
        # "random": a deterministic pseudo-random key per sled offset
        return float((sled.offset * 2654435761) % 1000003)

    def _refresh(self) -> None:
        if self.kernel.sleds_stamp(self.fd) == self._stamp:
            # nothing the SLED builder reads has moved since the last
            # fetch: the vector would come back identical, so don't ask
            self.kernel.counters.sleds_refetch_skips += 1
            return
        remaining = sorted((c.offset, c.offset + c.length)
                           for c in self._heap)
        vector = self._fetch_vector()
        self._stamp = self.kernel.sleds_stamp(self.fd)
        self.kernel.charge_cpu(len(vector) * INIT_CPU_PER_SLED)
        self._heap = self._chunks_from(vector, within=_merge_spans(remaining))
        heapq.heapify(self._heap)
        self._feed_prefetcher()

    def _feed_prefetcher(self) -> None:
        """Hand the next few picks to the attached prefetcher.

        The chunks the session will return soonest are exactly the spans
        worth speculating on: by the time ``next_read`` reaches them the
        pages are (ideally) resident and the pick costs a cache hit."""
        if self.prefetcher is None or not self._heap:
            return
        of = self.kernel._fd(self.fd)
        for chunk in heapq.nsmallest(self.prefetch_depth, self._heap):
            self.prefetcher.prefetch_span(
                of.fs, of.inode, chunk.offset, chunk.length)

    # -- API -----------------------------------------------------------------

    def _pin_cached_chunks(self) -> None:
        """Lock every currently-cached page the session will return.

        This is the paper's §3.4 proposal — "adding a lock or reservation
        mechanism would improve the accuracy and lifetime of SLEDs by
        controlling access to the affected resources" — applied to the
        pick session: the pages whose low latency justified the pick order
        cannot be evicted out from under it.  Pins release chunk by chunk
        as chunks are delivered, and unconditionally at finish.
        """
        from repro.sim.units import page_span  # noqa: PLC0415

        cache = self.kernel.page_cache
        inode_id = self.kernel._fd(self.fd).inode.id
        for chunk in self._heap:
            for page in page_span(chunk.offset, chunk.length):
                key = (inode_id, page)
                if cache.peek(key) and cache.pin(key):
                    self._pinned.add(key)

    def _unpin_chunk(self, chunk: "_Chunk") -> None:
        if not self._pinned:
            return
        from repro.sim.units import page_span  # noqa: PLC0415

        inode_id = self.kernel._fd(self.fd).inode.id
        for page in page_span(chunk.offset, chunk.length):
            key = (inode_id, page)
            if key in self._pinned:
                self.kernel.page_cache.unpin(key)
                self._pinned.discard(key)

    def release_pins(self) -> None:
        """Drop every outstanding pin (called by sleds_pick_finish)."""
        for key in self._pinned:
            self.kernel.page_cache.unpin(key)
        self._pinned.clear()

    def next_read(self) -> tuple[int, int] | None:
        """The next (offset, nbytes) to read, or None when exhausted."""
        if not self._heap:
            return None
        if (self.refresh_every and self.picks
                and self.picks % self.refresh_every == 0):
            self._refresh()
            if not self._heap:
                return None
        self.kernel.charge_cpu(PICK_CPU_PER_CHUNK)
        chunk = heapq.heappop(self._heap)
        self.picks += 1
        self._unpin_chunk(chunk)
        self._feed_prefetcher()
        return chunk.offset, chunk.length

    def remaining_chunks(self) -> int:
        return len(self._heap)

    def remaining_bytes(self) -> int:
        return sum(c.length for c in self._heap)


def _merge_spans(spans: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Coalesce sorted, possibly-adjacent half-open spans."""
    merged: list[tuple[int, int]] = []
    for lo, hi in spans:
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(hi, merged[-1][1]))
        else:
            merged.append((lo, hi))
    return merged


def _clip_spans(spans: list[tuple[int, int]], lo: int,
                hi: int) -> list[tuple[int, int]]:
    """Intersect a span list with ``[lo, hi)``."""
    out = []
    for slo, shi in spans:
        clo, chi = max(slo, lo), min(shi, hi)
        if clo < chi:
            out.append((clo, chi))
    return out


# ---------------------------------------------------------------------------
# The C-style functional API (paper Table 1)
# ---------------------------------------------------------------------------

_sessions: dict[tuple[int, int], SledsPickSession] = {}


def _key(kernel, fd: int) -> tuple[int, int]:
    return (id(kernel), fd)


def sleds_pick_init(kernel, fd: int, preferred_bufsize: int,
                    record_mode: bool = False, separator: bytes = b"\n",
                    refresh_every: int = 0, order: str = "sleds",
                    pin_cached: bool = False, prefetcher=None,
                    prefetch_depth: int = 4) -> int:
    """Start a pick session on ``fd``; returns the buffer size to use."""
    key = _key(kernel, fd)
    if key in _sessions:
        raise InvalidArgumentError(
            f"fd {fd} already has an active pick session")
    session = SledsPickSession(
        kernel, fd, preferred_bufsize, record_mode=record_mode,
        separator=separator, refresh_every=refresh_every, order=order,
        pin_cached=pin_cached, prefetcher=prefetcher,
        prefetch_depth=prefetch_depth)
    _sessions[key] = session
    return session.bufsize


def sleds_pick_next_read(kernel, fd: int) -> tuple[int, int] | None:
    """Advise where to read next: (offset, nbytes), or None when done."""
    try:
        session = _sessions[_key(kernel, fd)]
    except KeyError:
        raise InvalidArgumentError(
            f"fd {fd} has no pick session; call sleds_pick_init first"
        ) from None
    return session.next_read()


def sleds_pick_finish(kernel, fd: int) -> None:
    """End the session, releasing library state and any page pins."""
    session = _sessions.pop(_key(kernel, fd), None)
    if session is not None:
        session.release_pins()


def active_session(kernel, fd: int) -> SledsPickSession | None:
    """Expose the session object (used by tests and the ff wrapper)."""
    return _sessions.get(_key(kernel, fd))
