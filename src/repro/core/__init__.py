"""The paper's primary contribution: SLEDs structures, kernel-side builder,
and the user-space pick/delivery library."""

from repro.core.builder import build_sled_vector, page_level
from repro.core.delivery import (
    SLEDS_BEST,
    SLEDS_LINEAR,
    estimate_delivery_time,
    estimate_range_delivery,
    sleds_total_delivery_time,
    sleds_total_delivery_time_path,
)
from repro.core.ffsleds import (
    FfSledsSession,
    ff_active_session,
    ffsleds_pick_finish,
    ffsleds_pick_init,
    ffsleds_pick_next_read,
)
from repro.core.pick import (
    SledsPickSession,
    active_session,
    sleds_pick_finish,
    sleds_pick_init,
    sleds_pick_next_read,
)
from repro.core.records import adjust_to_records
from repro.core.sled import Sled, SledVector
from repro.core.sled_table import LevelCharacteristics, SledTable, SledTableError

__all__ = [
    "Sled",
    "SledVector",
    "SledTable",
    "SledTableError",
    "LevelCharacteristics",
    "build_sled_vector",
    "page_level",
    "adjust_to_records",
    "SledsPickSession",
    "sleds_pick_init",
    "sleds_pick_next_read",
    "sleds_pick_finish",
    "active_session",
    "FfSledsSession",
    "ffsleds_pick_init",
    "ffsleds_pick_next_read",
    "ffsleds_pick_finish",
    "ff_active_session",
    "SLEDS_LINEAR",
    "SLEDS_BEST",
    "estimate_delivery_time",
    "estimate_range_delivery",
    "sleds_total_delivery_time",
    "sleds_total_delivery_time_path",
]
