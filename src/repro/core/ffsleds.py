"""Element-granular SLEDs wrapper for the LHEASOFT ports (paper §5.3).

"We implemented an additional library for LHEASOFT that allows applications
to access SLEDs in units of data elements (usually floating point numbers),
rather than bytes; the calls are the same, with ``ff`` prepended."

A FITS data unit starts at a block-aligned ``data_offset`` and holds
``element_count`` fixed-size elements.  The wrapper runs a byte-granular
pick session under the hood and converts each advised byte chunk into an
element range, guaranteeing each element is delivered exactly once:

* a chunk is mapped to the elements whose *first byte* it contains;
* element ranges already delivered are subtracted (chunk edges can split
  an element between two chunks; the element follows its first byte, and
  the few bytes read twice are the "running over the edge" cost the byte
  library avoids for records — negligible at element granularity).
"""

from __future__ import annotations

from repro.core.pick import (
    SledsPickSession,
    _key,
    _sessions,
)
from repro.sim.errors import InvalidArgumentError


class FfSledsSession:
    """Per-descriptor element-oriented pick state."""

    def __init__(self, kernel, fd: int, data_offset: int, element_size: int,
                 element_count: int, preferred_elements: int,
                 order: str = "sleds") -> None:
        if element_size <= 0:
            raise InvalidArgumentError(
                f"element size must be positive: {element_size}")
        if element_count < 0 or data_offset < 0:
            raise InvalidArgumentError(
                f"bad data region: offset={data_offset}, n={element_count}")
        if preferred_elements <= 0:
            raise InvalidArgumentError(
                f"preferred element count must be positive: {preferred_elements}")
        self.kernel = kernel
        self.fd = fd
        self.data_offset = data_offset
        self.element_size = element_size
        self.element_count = element_count
        self._byte_session = SledsPickSession(
            kernel, fd, preferred_bufsize=preferred_elements * element_size,
            order=order)
        self._pending: list[tuple[int, int]] = []

    def _elements_of_chunk(self, offset: int, length: int) -> tuple[int, int]:
        """Half-open element range whose *first byte* lies inside the chunk
        ``[offset, offset + length)``.

        Element ``e`` starts at byte ``data_offset + e * element_size``;
        ceil division on both edges yields exactly the elements whose start
        falls inside the chunk.
        """
        size = self.element_size
        first = max(0, -(-(offset - self.data_offset) // size))
        last = max(0, -(-(offset + length - self.data_offset) // size))
        last = min(self.element_count, last)
        return first, max(first, last)

    def next_read(self) -> tuple[int, int] | None:
        """Next (element_index, element_count) to process, or None.

        Byte chunks from the underlying session partition the file, and an
        element is mapped to the unique chunk holding its first byte, so
        the element ranges produced here partition ``[0, element_count)``
        with no bookkeeping (property-tested in the test suite).
        """
        while True:
            if self._pending:
                return self._pending.pop(0)
            chunk = self._byte_session.next_read()
            if chunk is None:
                return None
            first, last = self._elements_of_chunk(*chunk)
            if last > first:
                self._pending.append((first, last - first))

    def byte_range(self, element_index: int, count: int) -> tuple[int, int]:
        """(file offset, nbytes) covering an element range."""
        offset = self.data_offset + element_index * self.element_size
        return offset, count * self.element_size


def _runs(sorted_values: list[int]) -> list[tuple[int, int]]:
    """Group sorted ints into (start, run_length) tuples."""
    out: list[tuple[int, int]] = []
    for value in sorted_values:
        if out and value == out[-1][0] + out[-1][1]:
            out[-1] = (out[-1][0], out[-1][1] + 1)
        else:
            out.append((value, 1))
    return out


_ff_sessions: dict[tuple[int, int], FfSledsSession] = {}


def ffsleds_pick_init(kernel, fd: int, data_offset: int, element_size: int,
                      element_count: int, preferred_elements: int,
                      order: str = "sleds") -> int:
    """Start an element-oriented session; returns preferred element count."""
    key = _key(kernel, fd)
    if key in _ff_sessions or key in _sessions:
        raise InvalidArgumentError(
            f"fd {fd} already has an active pick session")
    session = FfSledsSession(kernel, fd, data_offset, element_size,
                             element_count, preferred_elements, order=order)
    _ff_sessions[key] = session
    return preferred_elements


def ffsleds_pick_next_read(kernel, fd: int) -> tuple[int, int] | None:
    """Next (element_index, element_count), or None when exhausted."""
    try:
        session = _ff_sessions[_key(kernel, fd)]
    except KeyError:
        raise InvalidArgumentError(
            f"fd {fd} has no ff pick session; call ffsleds_pick_init first"
        ) from None
    return session.next_read()


def ffsleds_pick_finish(kernel, fd: int) -> None:
    """End the element-oriented session."""
    _ff_sessions.pop(_key(kernel, fd), None)


def ff_active_session(kernel, fd: int) -> FfSledsSession | None:
    """Expose the session (tests and the LHEASOFT ports use this)."""
    return _ff_sessions.get(_key(kernel, fd))
