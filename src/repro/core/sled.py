"""The SLED structure and SLED vectors.

The paper's Figure 2 defines a SLED as::

    struct sled {
        long  offset;     /* into the file */
        long  length;     /* of the segment */
        float latency;    /* in seconds */
        float bandwidth;  /* in bytes/sec */
    };

A file's state is a vector of SLEDs: "moving from the beginning of the file
to the end, each discontinuity in storage media, latency, or bandwidth
results in another SLED in the representation."  :class:`SledVector`
enforces exactly that invariant — sorted, non-overlapping, gap-free
coverage of ``[0, file_size)`` with adjacent SLEDs differing in latency or
bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Sled:
    """Estimated retrieval characteristics of one contiguous file segment."""

    offset: int
    length: int
    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"negative SLED offset: {self.offset}")
        if self.length <= 0:
            raise ValueError(f"non-positive SLED length: {self.length}")
        if self.latency < 0:
            raise ValueError(f"negative SLED latency: {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"non-positive SLED bandwidth: {self.bandwidth}")

    @property
    def end(self) -> int:
        """First byte past this segment."""
        return self.offset + self.length

    def delivery_time(self) -> float:
        """Estimated seconds to deliver this whole segment in isolation."""
        return self.latency + self.length / self.bandwidth

    def same_level(self, other: "Sled") -> bool:
        """Whether two SLEDs describe the same storage level."""
        return (self.latency == other.latency
                and self.bandwidth == other.bandwidth)

    def split_at(self, offset: int) -> tuple["Sled", "Sled"]:
        """Split into two SLEDs at an interior absolute offset."""
        if not self.offset < offset < self.end:
            raise ValueError(
                f"split offset {offset} not inside ({self.offset}, {self.end})")
        left = Sled(self.offset, offset - self.offset,
                    self.latency, self.bandwidth)
        right = Sled(offset, self.end - offset, self.latency, self.bandwidth)
        return left, right


class SledVector:
    """An ordered, validated sequence of SLEDs covering a file."""

    def __init__(self, sleds: Iterable[Sled], file_size: int | None = None,
                 coalesce: bool = True) -> None:
        items = sorted(sleds, key=lambda s: s.offset)
        if coalesce:
            items = self._coalesce(items)
        self._validate(items, file_size)
        self._sleds: tuple[Sled, ...] = tuple(items)
        self.file_size = (file_size if file_size is not None
                          else (items[-1].end if items else 0))

    @staticmethod
    def _coalesce(items: list[Sled]) -> list[Sled]:
        out: list[Sled] = []
        for sled in items:
            if out and out[-1].end == sled.offset and out[-1].same_level(sled):
                prev = out.pop()
                sled = Sled(prev.offset, prev.length + sled.length,
                            prev.latency, prev.bandwidth)
            out.append(sled)
        return out

    @staticmethod
    def _validate(items: list[Sled], file_size: int | None) -> None:
        if not items:
            if file_size not in (None, 0):
                raise ValueError(
                    f"empty SLED vector for file of size {file_size}")
            return
        if items[0].offset != 0:
            raise ValueError(
                f"SLED vector must start at offset 0, got {items[0].offset}")
        for prev, cur in zip(items, items[1:]):
            if cur.offset != prev.end:
                raise ValueError(
                    f"gap or overlap between SLEDs at {prev.end} vs "
                    f"{cur.offset}")
        if file_size is not None and items[-1].end != file_size:
            raise ValueError(
                f"SLED vector covers {items[-1].end} bytes of a "
                f"{file_size}-byte file")

    # -- sequence protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._sleds)

    def __iter__(self) -> Iterator[Sled]:
        return iter(self._sleds)

    def __getitem__(self, index: int) -> Sled:
        return self._sleds[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SledVector):
            return NotImplemented
        return self._sleds == other._sleds

    # -- queries --------------------------------------------------------------

    def sled_at(self, offset: int) -> Sled:
        """The SLED containing byte ``offset`` (binary search)."""
        lo, hi = 0, len(self._sleds) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            sled = self._sleds[mid]
            if offset < sled.offset:
                hi = mid - 1
            elif offset >= sled.end:
                lo = mid + 1
            else:
                return sled
        raise ValueError(f"offset {offset} not covered by SLED vector")

    def levels(self) -> set[tuple[float, float]]:
        """Distinct (latency, bandwidth) levels present."""
        return {(s.latency, s.bandwidth) for s in self._sleds}

    def bytes_at_or_below_latency(self, latency: float) -> int:
        """How many bytes are estimated at most ``latency`` away."""
        return sum(s.length for s in self._sleds if s.latency <= latency)

    def min_latency(self) -> float:
        return min(s.latency for s in self._sleds)

    def max_latency(self) -> float:
        return max(s.latency for s in self._sleds)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SledVector({len(self._sleds)} sleds, {self.file_size} bytes)"
