"""Kernel-side SLED vector construction.

Implements the paper's §4.1 walk: "each virtual memory page of the data
file is checked.  After the kernel finds out where a page of the data file
resides, it assigns a latency and bandwidth from the sleds table to this
page.  If consecutive pages have the same latency and bandwidth, i.e. they
are in the same storage device, they are grouped into one SLED."

Two builders produce bit-identical vectors:

* :func:`build_sled_vector_full_walk` — the paper's literal O(npages)
  walk, one residency peek plus one ``page_estimate`` per page.  Kept as
  the reference implementation for property tests and benchmarks.
* :func:`build_sled_vector` — the production path: O(resident + runs).
  Resident pages come from the cache's per-inode residency index as
  intervals; the gaps between them are answered by the filesystem's
  batched :meth:`~repro.fs.filesystem.FileSystem.span_estimates`, which
  reports contiguous same-level runs straight from layout/HSM/NFS state.

Residency checks use the cache's index (or :meth:`PageCache.peek` in the
full walk) so asking for SLEDs does not itself perturb the cache recency
the SLEDs describe.
"""

from __future__ import annotations

from repro.cache.page_cache import PageCache
from repro.core.sled import Sled, SledVector
from repro.core.sled_table import SledTable
from repro.devices import batch
from repro.fs.filesystem import FileSystem, PageEstimate
from repro.fs.inode import Inode
from repro.sim.units import PAGE_SIZE

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a hard dep in practice
    np = None

#: below this many runs the scalar fold is faster than numpy dispatch
_VECTOR_MIN_RUNS = 16


def page_level(cache: PageCache, fs: FileSystem, inode: Inode,
               page_index: int, table: SledTable) -> tuple[float, float]:
    """(latency, bandwidth) estimate for one page right now."""
    if cache.peek((inode.id, page_index)):
        row = table.memory
        return row.latency, row.bandwidth
    return resolve_estimate(table, fs.page_estimate(inode, page_index))


def resolve_estimate(table: SledTable, estimate: PageEstimate,
                     queue_delays: dict[str, float] | None = None,
                     ) -> tuple[float, float]:
    """Turn a filesystem estimate into concrete (latency, bandwidth),
    falling back to the boot-time sleds-table row where not overridden.

    ``queue_delays`` (device_key -> seconds) is the queue-aware term: with
    a live I/O engine, a request issued *now* waits behind whatever is
    already queued on the page's device, so that wait is part of the
    latency the SLED promises.  The estimate's own ``queue_delay`` (set by
    filesystems that model internal queueing) adds on top.
    """
    extra = estimate.queue_delay
    if queue_delays:
        extra += queue_delays.get(estimate.device_key, 0.0)
    if estimate.latency is not None and estimate.bandwidth is not None:
        return estimate.latency + extra, estimate.bandwidth
    row = table.lookup(estimate.device_key)
    latency = estimate.latency if estimate.latency is not None else row.latency
    bandwidth = (estimate.bandwidth if estimate.bandwidth is not None
                 else row.bandwidth)
    return latency + extra, bandwidth


def _emit(levels: list[tuple[int, tuple[float, float]]],
          size: int) -> SledVector:
    """Fold per-run levels (lengths in pages, in file order) into SLEDs,
    merging same-level neighbours; the last SLED is clamped to ``size``."""
    sleds: list[Sled] = []
    page_cursor = 0
    run_start = 0
    run_level: tuple[float, float] | None = None
    for run_pages, level in levels:
        if run_level is None:
            run_level = level
        elif level != run_level:
            offset = run_start * PAGE_SIZE
            end = page_cursor * PAGE_SIZE
            sleds.append(Sled(offset, end - offset, *run_level))
            run_start = page_cursor
            run_level = level
        page_cursor += run_pages
    assert run_level is not None
    offset = run_start * PAGE_SIZE
    sleds.append(Sled(offset, size - offset, *run_level))
    return SledVector(sleds, file_size=size)


def _emit_arrays(counts: list[int], lats: list[float], bws: list[float],
                 size: int) -> SledVector:
    """:func:`_emit` on flat per-run arrays — one numpy pass.

    Exact-equality contract (why this is bit-identical to ``_emit``):

    * group boundaries come from elementwise ``!=`` on the latency and
      bandwidth arrays — the same IEEE comparisons the scalar fold makes
      (``==`` is transitive for the non-NaN floats used here, so
      comparing adjacent runs is equivalent to comparing each run
      against its group head);
    * byte offsets are ``int64`` page-count prefix sums times
      ``PAGE_SIZE`` — integer arithmetic, no rounding anywhere.
    """
    run_pages = np.asarray(counts, dtype=np.int64)
    lat = np.asarray(lats)
    bw = np.asarray(bws)
    heads = np.flatnonzero(
        np.concatenate(([True], (lat[1:] != lat[:-1]) | (bw[1:] != bw[:-1]))))
    page_starts = np.concatenate(
        ([0], np.add.accumulate(run_pages)))[heads] * PAGE_SIZE
    ends = np.append(page_starts[1:], size)
    return SledVector(
        [Sled(int(offset), int(end - offset), float(latency),
              float(bandwidth))
         for offset, end, latency, bandwidth
         in zip(page_starts, ends, lat[heads], bw[heads])],
        file_size=size)


def build_sled_vector(cache: PageCache, fs: FileSystem, inode: Inode,
                      table: SledTable,
                      queue_delays: dict[str, float] | None = None,
                      ) -> SledVector:
    """The FSLEDS_GET payload: a validated SLED vector for ``inode``.

    Cost is O(resident runs + estimate runs), not O(npages) and not even
    O(resident pages): resident *intervals* come straight from the
    cache's run-based per-inode index (:meth:`PageCache.resident_runs` —
    no sort, no per-page walk) and the non-resident gaps are filled by
    one ``span_estimates`` call each.

    ``queue_delays`` (device_key -> seconds, from
    :meth:`~repro.sim.engine.IoEngine.queue_delays`) inflates the latency
    of non-resident runs by the current wait behind each device's queue;
    resident (memory-level) runs are untouched — cached pages don't queue.

    The walk collects flat per-run arrays (page counts, base latencies,
    queue extras, bandwidths); with numpy available the queue-delay add
    and the same-level merge run as single array passes
    (:func:`_emit_arrays`), bit-identical to the scalar fold — the add
    is the same one IEEE operation per run, just batched.  Small
    vectors (< ``_VECTOR_MIN_RUNS`` runs) and the ``SLEDS_NO_VECTOR``
    escape hatch take the scalar fold.
    """
    size = inode.size
    if size == 0:
        return SledVector([], file_size=0)
    npages = inode.npages
    row = table.memory
    counts: list[int] = []
    base_lats: list[float] = []
    extras: list[float] = []
    bws: list[float] = []

    def gap(start: int, n: int) -> None:
        for run_pages, estimate in fs.span_estimates(inode, start, n):
            extra = estimate.queue_delay
            if queue_delays:
                extra += queue_delays.get(estimate.device_key, 0.0)
            latency = estimate.latency
            bandwidth = estimate.bandwidth
            if latency is None or bandwidth is None:
                fallback = table.lookup(estimate.device_key)
                if latency is None:
                    latency = fallback.latency
                if bandwidth is None:
                    bandwidth = fallback.bandwidth
            counts.append(run_pages)
            base_lats.append(latency)
            extras.append(extra)
            bws.append(bandwidth)

    cursor = 0
    for start, end in cache.resident_runs(inode.id, npages):
        if start > cursor:
            gap(cursor, start - cursor)
        counts.append(end - start)
        base_lats.append(row.latency)
        extras.append(0.0)
        bws.append(row.bandwidth)
        cursor = end
    if cursor < npages:
        gap(cursor, npages - cursor)
    if (np is not None and len(counts) >= _VECTOR_MIN_RUNS
            and batch.enabled()):
        # x + 0.0 is bitwise x for the positive latencies involved, so
        # memory runs (extra pinned to 0.0) survive the batched add
        return _emit_arrays(
            counts, np.asarray(base_lats) + np.asarray(extras), bws, size)
    return _emit(
        [(run_pages, (latency + extra, bandwidth))
         for run_pages, latency, extra, bandwidth
         in zip(counts, base_lats, extras, bws)],
        size)


def build_sled_vector_full_walk(cache: PageCache, fs: FileSystem,
                                inode: Inode, table: SledTable) -> SledVector:
    """Reference implementation: the paper's literal per-page walk."""
    size = inode.size
    if size == 0:
        return SledVector([], file_size=0)
    npages = inode.npages
    return _emit(
        [(1, page_level(cache, fs, inode, page, table))
         for page in range(npages)],
        size)
