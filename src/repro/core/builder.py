"""Kernel-side SLED vector construction.

Implements the paper's §4.1 walk: "each virtual memory page of the data
file is checked.  After the kernel finds out where a page of the data file
resides, it assigns a latency and bandwidth from the sleds table to this
page.  If consecutive pages have the same latency and bandwidth, i.e. they
are in the same storage device, they are grouped into one SLED."

Residency checks use :meth:`PageCache.peek` so asking for SLEDs does not
itself perturb the cache recency the SLEDs describe.
"""

from __future__ import annotations

from repro.cache.page_cache import PageCache
from repro.core.sled import Sled, SledVector
from repro.core.sled_table import SledTable
from repro.fs.filesystem import FileSystem
from repro.fs.inode import Inode
from repro.sim.units import PAGE_SIZE


def page_level(cache: PageCache, fs: FileSystem, inode: Inode,
               page_index: int, table: SledTable) -> tuple[float, float]:
    """(latency, bandwidth) estimate for one page right now."""
    if cache.peek((inode.id, page_index)):
        row = table.memory
        return row.latency, row.bandwidth
    estimate = fs.page_estimate(inode, page_index)
    if estimate.latency is not None and estimate.bandwidth is not None:
        return estimate.latency, estimate.bandwidth
    row = table.lookup(estimate.device_key)
    latency = estimate.latency if estimate.latency is not None else row.latency
    bandwidth = (estimate.bandwidth if estimate.bandwidth is not None
                 else row.bandwidth)
    return latency, bandwidth


def build_sled_vector(cache: PageCache, fs: FileSystem, inode: Inode,
                      table: SledTable) -> SledVector:
    """The FSLEDS_GET payload: a validated SLED vector for ``inode``."""
    size = inode.size
    if size == 0:
        return SledVector([], file_size=0)
    sleds: list[Sled] = []
    run_start = 0
    run_level: tuple[float, float] | None = None
    npages = inode.npages
    for page_index in range(npages):
        level = page_level(cache, fs, inode, page_index, table)
        if run_level is None:
            run_level = level
        elif level != run_level:
            offset = run_start * PAGE_SIZE
            end = page_index * PAGE_SIZE
            sleds.append(Sled(offset, end - offset, *run_level))
            run_start = page_index
            run_level = level
    assert run_level is not None
    offset = run_start * PAGE_SIZE
    sleds.append(Sled(offset, size - offset, *run_level))
    return SledVector(sleds, file_size=size)
