"""The kernel sleds table: per-storage-level latency and bandwidth.

In the paper, "a sleds table, kept in the kernel, is filled by calling a
script from /etc/rc.d/init.d every time the machine is booted.  The sleds
table has a latency and bandwidth entry for every storage device, as well
as NFS-mounted partitions and primary memory.  The latency and bandwidth
... are obtained by running the lmbench benchmark."

Our equivalent: :mod:`repro.bench.lmbench` probes the simulated devices and
calls the ``FSLEDS_FILL`` ioctl with the measurements.  "The current
implementation keeps only a single entry per device" — dynamic filesystems
(HSM tape) override per page via
:class:`~repro.fs.filesystem.PageEstimate`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LevelCharacteristics:
    """One sleds-table row."""

    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"negative latency: {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"non-positive bandwidth: {self.bandwidth}")


class SledTableError(KeyError):
    """Lookup of a level the boot-time fill never characterised."""


class SledTable:
    """Mapping of device key → :class:`LevelCharacteristics`."""

    MEMORY_KEY = "memory"

    def __init__(self) -> None:
        self._levels: dict[str, LevelCharacteristics] = {}
        #: bumps on every fill so cached SLED vectors built against older
        #: rows stamp-mismatch and rebuild (re-running the boot script must
        #: not leave stale vectors behind)
        self.version = 0

    def fill(self, entries: dict[str, tuple[float, float]]) -> None:
        """Install (latency, bandwidth) rows; the FSLEDS_FILL payload."""
        for key, (latency, bandwidth) in entries.items():
            self._levels[key] = LevelCharacteristics(latency, bandwidth)
        self.version += 1

    def lookup(self, key: str) -> LevelCharacteristics:
        try:
            return self._levels[key]
        except KeyError:
            raise SledTableError(
                f"storage level {key!r} not in sleds table; filled levels: "
                f"{sorted(self._levels)} — did boot-time FSLEDS_FILL run?"
            ) from None

    def __contains__(self, key: str) -> bool:
        return key in self._levels

    def __len__(self) -> int:
        return len(self._levels)

    def entries(self) -> dict[str, LevelCharacteristics]:
        return dict(self._levels)

    @property
    def memory(self) -> LevelCharacteristics:
        """The primary-memory row (every filled table must have one)."""
        return self.lookup(self.MEMORY_KEY)
