"""Total delivery-time estimation (paper §4.2).

``sleds_total_delivery_time(kernel, fd, attack_plan)`` estimates how long
reading the entire file would take, "for applications only interested in
reporting or using that value" — the basis of the ``find -latency``
predicate and the gmc properties panel.

Attack plans:

* ``SLEDS_LINEAR`` — the file will be read front to back.  Each SLED is a
  storage-level transition, so the estimate charges every SLED its latency
  plus its transfer time.
* ``SLEDS_BEST`` — the file will be read in the pick library's order
  (cached data first, each level drained sequentially).  Each *level* is
  entered once, so its latency is charged once, and its bytes stream at
  the level's bandwidth.

``SLEDS_BEST`` is never larger than ``SLEDS_LINEAR`` for the same vector.
"""

from __future__ import annotations

from repro.core.sled import SledVector
from repro.sim.errors import InvalidArgumentError

SLEDS_LINEAR = "SLEDS_LINEAR"
SLEDS_BEST = "SLEDS_BEST"

_PLANS = (SLEDS_LINEAR, SLEDS_BEST)


def estimate_delivery_time(vector: SledVector,
                           attack_plan: str = SLEDS_LINEAR) -> float:
    """Delivery-time estimate for an already-fetched SLED vector."""
    if attack_plan not in _PLANS:
        raise InvalidArgumentError(
            f"unknown attack plan {attack_plan!r}; choose from {_PLANS}")
    if len(vector) == 0:
        return 0.0
    if attack_plan == SLEDS_LINEAR:
        return sum(s.latency + s.length / s.bandwidth for s in vector)
    # SLEDS_BEST: one latency charge per distinct level, bytes per level
    levels: dict[tuple[float, float], int] = {}
    for sled in vector:
        key = (sled.latency, sled.bandwidth)
        levels[key] = levels.get(key, 0) + sled.length
    return sum(latency + nbytes / bandwidth
               for (latency, bandwidth), nbytes in levels.items())


def estimate_range_delivery(vector: SledVector, offset: int, length: int,
                            attack_plan: str = SLEDS_LINEAR) -> float:
    """Delivery-time estimate for a byte range of the file.

    Used by progress reporting ("how long for the rest?") and any
    application planning partial retrievals.  Latency is charged per SLED
    (or per level, under ``SLEDS_BEST``) that intersects the range;
    transfer time covers only the intersected bytes.
    """
    if attack_plan not in _PLANS:
        raise InvalidArgumentError(
            f"unknown attack plan {attack_plan!r}; choose from {_PLANS}")
    if offset < 0 or length < 0:
        raise InvalidArgumentError(
            f"negative offset/length: {offset}, {length}")
    end = min(offset + length, vector.file_size)
    pieces: list[tuple[float, float, int]] = []
    for sled in vector:
        lo = max(sled.offset, offset)
        hi = min(sled.end, end)
        if lo < hi:
            pieces.append((sled.latency, sled.bandwidth, hi - lo))
    if attack_plan == SLEDS_LINEAR:
        return sum(latency + nbytes / bandwidth
                   for latency, bandwidth, nbytes in pieces)
    levels: dict[tuple[float, float], int] = {}
    for latency, bandwidth, nbytes in pieces:
        key = (latency, bandwidth)
        levels[key] = levels.get(key, 0) + nbytes
    return sum(latency + nbytes / bandwidth
               for (latency, bandwidth), nbytes in levels.items())


def sleds_total_delivery_time(kernel, fd: int,
                              attack_plan: str = SLEDS_LINEAR) -> float:
    """Fetch SLEDs via ioctl and estimate full-file delivery time."""
    vector = kernel.get_sleds(fd)
    return estimate_delivery_time(vector, attack_plan)


def sleds_total_delivery_time_path(kernel, path: str,
                                   attack_plan: str = SLEDS_LINEAR) -> float:
    """Convenience: open/estimate/close (used by find and gmc)."""
    fd = kernel.open(path)
    try:
        return sleds_total_delivery_time(kernel, fd, attack_plan)
    finally:
        kernel.close(fd)
