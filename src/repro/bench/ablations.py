"""Extension experiments and design-choice ablations (DESIGN.md §5).

These go beyond the paper's figures:

* **extA** — the paper's repeated claim that "gains may be much greater
  with HSM systems": wc over a three-level HSM file (page cache / disk
  stage / tape), where SLEDs ordering drains each level before touching
  the next.
* **extB** — cache-policy ablation: the LRU pathology of Figure 3 under
  CLOCK and scan-resistant 2Q.
* **extC** — SLED staleness (paper §3.4): an interfering reader evicts
  cached pages mid-run; periodic SLED refresh (the paper's proposed fix)
  vs the init-only implementation.
* **pick-order** — what the pick library's lowest-latency-first rule buys
  over naive linear or random chunk orders.
* **readahead** — cluster-size sensitivity of the without-SLEDs baseline
  (guards against strawman baselines).
"""

from __future__ import annotations

import dataclasses

from repro.apps.wc import wc
from repro.bench.measure import measure_runs, summarize
from repro.bench.report import ExperimentResult
from repro.bench.workloads import BenchConfig, make_machine, text_workload
from repro.core.pick import (
    sleds_pick_finish,
    sleds_pick_init,
    sleds_pick_next_read,
)
from repro.sim.units import PAGE_SIZE


# ---------------------------------------------------------------------------
# Ext. A: HSM amplification
# ---------------------------------------------------------------------------

def run_extA(config: BenchConfig, paper_mb: float = 64) -> ExperimentResult:
    """wc over an HSM file spanning tape, disk stage, and page cache."""
    result = ExperimentResult(
        exp_id="extA", title="HSM amplification: wc over a "
                             "tape/stage/cache resident file",
        columns=["mode", "time s (paper-eq)", "±", "tape seconds",
                 "device pages"],
        paper_expectation=(
            "effects 'expected to be much more pronounced' than the "
            "disk-based 4.5x — tape locates dominate the without case"),
    )
    size = config.scaled_bytes(paper_mb)
    npages = size // PAGE_SIZE
    for use_sleds in (False, True):
        machine = make_machine(config, profile="hsm")
        # stage holds ~3/4 of the file: three distinct levels after warm
        machine.hsmfs.stage_pages = max(16, (npages * 3) // 4)
        kernel = machine.kernel
        machine.hsmfs.create_tape_file(
            "bench/archive.txt", size, "VOL000")
        # content defaults to zeros; give it text so wc has work
        from repro.fs.content import SyntheticText
        inode = machine.hsmfs.resolve(["bench", "archive.txt"])
        inode.content = SyntheticText(seed=config.seed, size=size)
        path = "/mnt/hsm/bench/archive.txt"

        def run(k=kernel, p=path, s=use_sleds):
            wc(k, p, use_sleds=s)

        stats = measure_runs(kernel, run, runs=max(3, config.runs // 2))
        tape_busy = sum(d.stats.busy_time
                        for d in machine.hsmfs.autochanger.drives)
        result.add_row(
            "with SLEDs" if use_sleds else "without",
            round(config.to_paper_seconds(stats.time.mean), 2),
            round(config.to_paper_seconds(stats.time.ci90), 2),
            round(config.to_paper_seconds(
                tape_busy / max(1, stats.time.n)), 2),
            round(stats.pages.mean))
    t0 = result.rows[0][1]
    t1 = result.rows[1][1]
    if t1:
        result.notes.append(f"HSM speedup {t0 / t1:.1f}x "
                            f"(vs ~4.5x peak on plain ext2)")
    return result


# ---------------------------------------------------------------------------
# Ext. B: replacement-policy ablation
# ---------------------------------------------------------------------------

def run_extB(config: BenchConfig,
             sizes_mb: tuple[float, ...] = (32, 48, 64, 96)) -> ExperimentResult:
    """wc warm-cache sweep per replacement policy."""
    result = ExperimentResult(
        exp_id="extB", title="Cache-policy ablation: wc speedup from SLEDs "
                             "under LRU / CLOCK / 2Q",
        columns=["policy", "MB", "without s", "with s", "speedup"],
        paper_expectation=(
            "LRU and CLOCK show the Figure 3 pathology (big SLEDs wins); "
            "scan-resistant 2Q keeps some pages hot, shrinking the gap"),
    )
    for policy in ("lru", "clock", "2q"):
        pconfig = dataclasses.replace(config, policy=policy)
        for index, paper_mb in enumerate(sizes_mb):
            stats = {}
            for use_sleds in (False, True):
                workload = text_workload(pconfig, paper_mb, "/mnt/ext2",
                                         seed_salt=index)
                kernel = workload.kernel

                def run(k=kernel, p=workload.path, s=use_sleds):
                    wc(k, p, use_sleds=s)

                stats[use_sleds] = measure_runs(
                    kernel, run, runs=max(3, config.runs // 2))
            t0 = stats[False].time.mean
            t1 = stats[True].time.mean
            result.add_row(policy, paper_mb,
                           round(pconfig.to_paper_seconds(t0), 2),
                           round(pconfig.to_paper_seconds(t1), 2),
                           round(t0 / t1 if t1 else float("inf"), 2))
    return result


# ---------------------------------------------------------------------------
# Ext. C: SLED staleness and refresh
# ---------------------------------------------------------------------------

def _scan_with_prefetcher(kernel, path: str, refresh_every: int,
                          prefetch_from: int, prefetch_to: int,
                          bufsize: int = 64 * 1024,
                          interfere_every: int = 8) -> None:
    """A wc-like SLEDs scan of ``path`` while a cooperating prefetcher
    (another process, or kernel readahead on a shared file) pulls in pages
    from a region the scan has not reached yet.

    An init-only SLEDs session never learns those pages became cached; by
    the time its offset-ordered picks arrive there, the scan's own
    insertions have evicted them again and the prefetcher's work is
    wasted.  A refreshing session re-sorts its remaining chunks and reads
    the freshly cached region before it decays — the paper's §4.2 remark
    that refreshing "would allow the library to take advantage of any
    changes in state caused by e.g. file prefetching".
    """
    fd = kernel.open(path)
    try:
        sleds_pick_init(kernel, fd, bufsize, refresh_every=refresh_every)
        picks = 0
        prefetch_pos = prefetch_from
        while True:
            advice = sleds_pick_next_read(kernel, fd)
            if advice is None:
                break
            offset, nbytes = advice
            kernel.lseek(fd, offset)
            kernel.read(fd, nbytes)
            picks += 1
            if picks % interfere_every == 0 and prefetch_pos < prefetch_to:
                take = min(4 * bufsize, prefetch_to - prefetch_pos)
                kernel.pread(fd, prefetch_pos, take)
                prefetch_pos += take
        sleds_pick_finish(kernel, fd)
    finally:
        kernel.close(fd)


def run_extC(config: BenchConfig, paper_mb: float = 96) -> ExperimentResult:
    """SLED staleness: init-only SLEDs vs periodic refresh while a
    prefetcher changes the cache state mid-run (paper §3.4 / §4.2)."""
    result = ExperimentResult(
        exp_id="extC", title="SLED staleness under mid-run prefetching: "
                             "refresh cadence vs init-only",
        columns=["refresh every", "time s (paper-eq)", "±", "device pages"],
        paper_expectation=(
            "§4.2: refreshing the SLEDs occasionally lets the library "
            "exploit state changes (e.g. prefetching) — but only when the "
            "refresh cadence outpaces eviction; too-slow refresh pays the "
            "reordering cost without the reuse"),
    )
    size = config.scaled_bytes(paper_mb)
    # prefetcher covers the middle-late part of the initially-cold region,
    # which an offset-ordered scan reaches last
    prefetch_from = size // 2
    prefetch_to = (size * 3) // 4
    for refresh_every in (0, 8, 32):
        workload = text_workload(config, paper_mb, "/mnt/ext2", seed_salt=5)
        kernel = workload.kernel

        def run(k=kernel, p=workload.path, r=refresh_every):
            _scan_with_prefetcher(k, p, refresh_every=r,
                                  prefetch_from=prefetch_from,
                                  prefetch_to=prefetch_to)

        stats = measure_runs(kernel, run, runs=max(3, config.runs // 2))
        result.add_row("init only" if refresh_every == 0 else refresh_every,
                       round(config.to_paper_seconds(stats.time.mean), 2),
                       round(config.to_paper_seconds(stats.time.ci90), 2),
                       round(stats.pages.mean))
    return result


# ---------------------------------------------------------------------------
# Pick-order ablation
# ---------------------------------------------------------------------------

def run_abl_pick_order(config: BenchConfig,
                       paper_mb: float = 64) -> ExperimentResult:
    """Lowest-latency-first vs linear vs random chunk order."""
    result = ExperimentResult(
        exp_id="abl-pick-order", title="Pick-order ablation: wc, warm ext2",
        columns=["order", "time s (paper-eq)", "±", "device pages"],
        paper_expectation=(
            "'lowest latency, then lowest offset' beats linear (which "
            "rereads everything, as without SLEDs) and random (which "
            "destroys sequential streaming)"),
    )
    for order in ("sleds", "linear", "random"):
        workload = text_workload(config, paper_mb, "/mnt/ext2", seed_salt=3)
        kernel = workload.kernel

        def run(k=kernel, p=workload.path, o=order):
            fd = k.open(p)
            try:
                sleds_pick_init(k, fd, 64 * 1024, order=o)
                while True:
                    advice = sleds_pick_next_read(k, fd)
                    if advice is None:
                        break
                    offset, nbytes = advice
                    k.lseek(fd, offset)
                    k.read(fd, nbytes)
                sleds_pick_finish(k, fd)
            finally:
                k.close(fd)

        stats = measure_runs(kernel, run, runs=max(3, config.runs // 2))
        result.add_row(order,
                       round(config.to_paper_seconds(stats.time.mean), 2),
                       round(config.to_paper_seconds(stats.time.ci90), 2),
                       round(stats.pages.mean))
    return result


# ---------------------------------------------------------------------------
# Ext. J: the paper's motivating anecdote, measured
# ---------------------------------------------------------------------------

def run_extJ(config: BenchConfig, nfiles: int = 8,
             paper_mb: float = 2, trials: int = 12) -> ExperimentResult:
    """find -exec grep over a source tree after an interrupted search.

    The paper's §5.2 story: "the entry may be cached but earlier files may
    already have been flushed.  Repeating the operation, then, causes a
    complete rescan and fetch from high-latency storage.  ...  the
    SLEDs-aware find allows him to search cache first."  We measure it:
    the match sits in a random file, which an interrupted earlier search
    just cached; compare the naive rescan against the latency-ordered,
    stop-on-match composition.
    """
    import numpy as np

    from repro.apps.findutil import find_exec_grep_cached_first
    from repro.apps.grep import grep
    from repro.bench.workloads import NEEDLE

    result = ExperimentResult(
        exp_id="extJ", title="Re-grepping a source tree after an "
                             "interrupted search (the §5.2 anecdote)",
        columns=["strategy", "time s (paper-eq)", "±", "device pages"],
        paper_expectation=(
            "the naive rescan re-reads everything up to the match; the "
            "SLEDs-aware composition greps the cached file first and "
            "usually touches no device at all"),
    )
    size = config.scaled_bytes(paper_mb)
    rng = np.random.default_rng(config.seed + 404)
    for strategy in ("naive rescan", "cached-first"):
        times = []
        pages = []
        for trial in range(trials):
            machine = make_machine(config, seed_salt=300 + trial)
            kernel = machine.kernel
            fs = machine.ext2
            hot = int(rng.integers(0, nfiles))
            paths = []
            for i in range(nfiles):
                plants = {size // 3: NEEDLE} if i == hot else {}
                fs.create_text_file(f"tree/f{i}.c", size,
                                    seed=config.seed + i, plants=plants)
                paths.append(f"/mnt/ext2/tree/f{i}.c")
            # the interrupted first search cached the matching file
            kernel.warm_file(paths[hot])
            with kernel.process() as run:
                if strategy == "naive rescan":
                    for path in paths:
                        found = grep(kernel, path, NEEDLE,
                                     first_match_only=True)
                        if found.count:
                            break
                else:
                    cheap, expensive = find_exec_grep_cached_first(
                        kernel, "/mnt/ext2/tree", NEEDLE,
                        threshold_seconds=0.010, name="*.c",
                        stop_on_match=True)
                    assert any(r.count for r in cheap + expensive)
            times.append(run.elapsed)
            pages.append(float(run.counters.pages_read))
        tstats = summarize(times)
        result.add_row(strategy,
                       round(config.to_paper_seconds(tstats.mean), 2),
                       round(config.to_paper_seconds(tstats.ci90), 2),
                       round(summarize(pages).mean))
    return result


# ---------------------------------------------------------------------------
# Ext. I: file sets over an HSM — inter-file ordering
# ---------------------------------------------------------------------------

def run_extI(config: BenchConfig, nfiles: int = 6,
             paper_mb: float = 8) -> ExperimentResult:
    """Processing a file set spread over tape cartridges.

    [Ste97] orders a set of files cached-first; SLEDs generalise the idea
    with live delivery estimates.  Files alternate across two cartridges;
    name order ping-pongs the autochanger while latency order (re-
    estimated after each file, so a mounted cartridge looks cheap) drains
    one cartridge before swapping.
    """
    from repro.apps.filesets import iterate_by_latency
    from repro.apps.wc import wc
    from repro.fs.content import SyntheticText

    result = ExperimentResult(
        exp_id="extI", title="File set over two tape cartridges: name "
                             "order vs SLEDs latency order",
        columns=["order", "time s (paper-eq)", "cartridge exchanges"],
        paper_expectation=(
            "latency order batches per cartridge: ~1 exchange instead of "
            "one per file"),
    )
    size = config.scaled_bytes(paper_mb)
    for mode in ("name order", "sleds order"):
        machine = make_machine(config, profile="hsm")
        # a single drive makes every alternation an exchange
        machine.hsmfs.autochanger.drives = \
            machine.hsmfs.autochanger.drives[:1]
        machine.hsmfs.autochanger._use_order = \
            list(machine.hsmfs.autochanger.drives)
        kernel = machine.kernel
        paths = []
        for i in range(nfiles):
            label = "VOL000" if i % 2 == 0 else "VOL001"
            inode = machine.hsmfs.create_tape_file(
                f"set/f{i}.dat", size, label)
            inode.content = SyntheticText(seed=config.seed + i, size=size)
            paths.append(f"/mnt/hsm/set/f{i}.dat")
        changer = machine.hsmfs.autochanger
        exchanges_before = changer.exchanges
        with kernel.process() as run:
            ordered = (iterate_by_latency(kernel, paths)
                       if mode == "sleds order" else iter(paths))
            for path in ordered:
                wc(kernel, path, use_sleds=(mode == "sleds order"))
        result.add_row(mode,
                       round(config.to_paper_seconds(run.elapsed), 2),
                       changer.exchanges - exchanges_before)
    return result


# ---------------------------------------------------------------------------
# Ext. H: multiprogramming — the "better citizen" claim
# ---------------------------------------------------------------------------

def run_extH(config: BenchConfig, paper_mb: float = 30) -> ExperimentResult:
    """Two concurrent scans sharing one cache, plain vs SLEDs.

    The paper: reordering reduces total I/O, making the application "a
    better citizen by reducing system load."  Two interleaved wc tasks
    re-read their own recently-used files; together the files exceed the
    cache, so each plain scan's faults evict the other's cached data.
    SLEDs tasks drain their cached portions first, so the *system-wide*
    device traffic drops, not just each task's elapsed time.
    """
    from repro.sim.tasks import RoundRobin, Task, wc_task

    result = ExperimentResult(
        exp_id="extH", title="Two concurrent wc scans sharing the cache: "
                             "system-wide cost, plain vs SLEDs",
        columns=["mode", "makespan s (paper-eq)", "total device pages",
                 "per-task faults"],
        paper_expectation=(
            "SLEDs pairs fault less in total — each task consumes its "
            "cached share before disturbing the other's"),
    )
    for use_sleds in (False, True):
        machine = make_machine(config, seed_salt=90)
        kernel = machine.kernel
        fs = machine.ext2
        size = config.scaled_bytes(paper_mb)
        fs.create_text_file("a.txt", size, seed=config.seed + 1)
        fs.create_text_file("b.txt", size, seed=config.seed + 2)
        kernel.warm_file("/mnt/ext2/a.txt")
        kernel.warm_file("/mnt/ext2/b.txt")
        pages_before = kernel.counters.pages_read
        start = kernel.clock.now
        scheduler = RoundRobin(kernel, [
            Task("wc-a", wc_task(kernel, "/mnt/ext2/a.txt",
                                 use_sleds=use_sleds)),
            Task("wc-b", wc_task(kernel, "/mnt/ext2/b.txt",
                                 use_sleds=use_sleds)),
        ])
        stats = scheduler.run()
        makespan = kernel.clock.now - start
        total_pages = kernel.counters.pages_read - pages_before
        faults = "/".join(str(s.hard_faults) for s in stats.values())
        result.add_row("with SLEDs" if use_sleds else "without",
                       round(config.to_paper_seconds(makespan), 2),
                       total_pages, faults)
    return result


# ---------------------------------------------------------------------------
# Ext. G: progress indicators — dynamic extrapolation vs SLEDs (§3.3)
# ---------------------------------------------------------------------------

def run_extG(config: BenchConfig, paper_mb: float = 32) -> ExperimentResult:
    """Progress-estimate accuracy: rate extrapolation vs SLEDs.

    §3.3: "Dynamically calculated estimates can be heavily skewed by high
    initial latency, such as in an HSM system."  We retrieve a file from
    (a) an HSM whose cartridge must first be mounted and (b) a cold NFS
    mount, sampling both estimators' implied total-time predictions at
    10/25/50 % progress and reporting their relative error against the
    measured total.
    """
    from repro.apps.progress import retrieve_with_progress
    from repro.fs.content import SyntheticText

    result = ExperimentResult(
        exp_id="extG", title="Progress-estimator accuracy at 10/25/50% "
                             "progress (relative error of implied total)",
        columns=["storage", "progress %", "dynamic err %", "sleds err %"],
        paper_expectation=(
            "the dynamic estimator is skewed hardest early, when the "
            "one-time latency dominates the observed rate; the SLEDs "
            "estimate is available up front and stays close"),
    )
    size = config.scaled_bytes(paper_mb)

    # (a) HSM: shelved cartridge, nothing staged
    machine = make_machine(config, profile="hsm")
    inode = machine.hsmfs.create_tape_file("obs.dat", size, "VOL002")
    inode.content = SyntheticText(seed=config.seed, size=size)
    report_hsm = retrieve_with_progress(machine.kernel, "/mnt/hsm/obs.dat")

    # (b) NFS: cold client and server
    machine = make_machine(config, profile="unix")
    machine.nfs.create_text_file("pub/data.txt", size, seed=config.seed)
    report_nfs = retrieve_with_progress(machine.kernel,
                                        "/mnt/nfs/pub/data.txt")

    for storage, report in (("hsm", report_hsm), ("nfs", report_nfs)):
        for fraction in (0.10, 0.25, 0.50):
            dynamic_err, sleds_err = report.estimator_errors(fraction)
            result.add_row(
                storage, int(fraction * 100),
                "-" if dynamic_err is None else round(100 * dynamic_err, 1),
                round(100 * sleds_err, 1))
    result.notes.append(
        f"hsm initial SLEDs estimate {report_hsm.initial_estimate:.1f}s "
        f"vs actual {report_hsm.total_time:.1f}s (available before the "
        f"first byte; the dynamic estimator shows nothing at t=0)")
    return result


# ---------------------------------------------------------------------------
# Ext. F: device independence — the same SLEDs stack on flash
# ---------------------------------------------------------------------------

def run_extF(config: BenchConfig,
             sizes_mb: tuple[float, ...] = (32, 64, 96)) -> ExperimentResult:
    """SLEDs over a device class the paper never saw (an SSD).

    The paper's conclusion: "the SLEDs interface is independent of the
    file system and physical device structure ... Scripts and other
    utilities built around this concept will remain useful even as
    storage systems continue to evolve."  We drop a flash device under
    an unchanged stack — boot characterisation, SLED building, pick
    ordering all run as-is — and compare the win against the 1999 disk.
    """
    from repro.apps.wc import wc
    from repro.devices.disk import DiskDevice
    from repro.devices.flash import FlashDevice
    from repro.fs.filesystem import Ext2Like
    from repro.kernel.kernel import Kernel
    from repro.machine import Machine
    from repro.sim.rng import RngStreams

    result = ExperimentResult(
        exp_id="extF", title="Device independence: SLEDs wc on 1999 disk "
                             "vs flash, warm cache",
        columns=["device", "MB", "without s", "with s", "speedup"],
        paper_expectation=(
            "no code changes: the boot probe measures the new device and "
            "SLEDs report it faithfully.  The *benefit* of reordering is "
            "proportional to the device/memory speed gap — a modern SSD "
            "out-streams a 48 MB/s 1999 memory copy, so the win "
            "evaporates and SLEDs correctly report near-uniform latency"),
    )
    for device_kind in ("disk", "flash"):
        for index, paper_mb in enumerate(sizes_mb):
            rng = RngStreams(config.seed + 99 + index)
            if device_kind == "disk":
                device = DiskDevice(name="hdd", rng=rng.stream("hdd"))
            else:
                device = FlashDevice(name="ssd", rng=rng.stream("ssd"))
            kernel = Kernel(cache_pages=config.cache_pages(), rng=rng,
                            noise=config.noise)
            machine = Machine(kernel=kernel)
            machine.mount("/", Ext2Like(DiskDevice(
                name="root", rng=rng.stream("root")), name="rootfs"))
            fs = Ext2Like(device, name="ext2")
            machine.mount("/mnt/ext2", fs)
            machine.boot()
            size = config.scaled_bytes(paper_mb)
            fs.create_text_file("data.txt", size, seed=config.seed)
            path = "/mnt/ext2/data.txt"
            times = {}
            for use_sleds in (False, True):
                def run(k=kernel, p=path, s=use_sleds):
                    wc(k, p, use_sleds=s)

                stats = measure_runs(kernel, run,
                                     runs=max(3, config.runs // 2))
                times[use_sleds] = stats.time.mean
            result.add_row(device_kind, paper_mb,
                           round(config.to_paper_seconds(times[False]), 2),
                           round(config.to_paper_seconds(times[True]), 2),
                           round(times[False] / times[True], 2))
    return result


# ---------------------------------------------------------------------------
# I/O scheduler ablation: scattered writeback
# ---------------------------------------------------------------------------

def run_abl_scheduler(config: BenchConfig, nfiles: int = 48) -> ExperimentResult:
    """Writeback batching through FCFS / SSTF / C-LOOK.

    Files spread across the platter are dirtied in random order, then
    ``sync()`` flushes the whole batch.  The elevator turns the scattered
    batch into a sweep; FCFS replays the random order as seeks.  (The
    paper cites Worthington's scheduling work as a natural accuracy
    enhancement for SLEDs substrates.)
    """
    import numpy as np

    from repro.sim.units import MB as MB_, PAGE_SIZE

    result = ExperimentResult(
        exp_id="abl-scheduler",
        title="Writeback of a scattered dirty batch per I/O scheduler",
        columns=["scheduler", "sync s (paper-eq)", "±", "pages written"],
        paper_expectation=(
            "elevator ordering amortises seeks across the whole batch; "
            "FCFS pays one seek chain per dirty file"),
    )
    for scheduler in ("fcfs", "sstf", "clook"):
        times = []
        pages = 0
        for trial in range(max(3, config.runs // 3)):
            machine = make_machine(config, seed_salt=70 + trial)
            kernel = machine.kernel
            kernel.io_scheduler = __import__(
                "repro.block.scheduler",
                fromlist=["make_scheduler"]).make_scheduler(scheduler)
            kernel.writeback_threshold_pages = 1 << 30
            fs = machine.ext2
            for i in range(nfiles):
                fs.create_file(f"scatter/f{i:03d}.dat", 4 * PAGE_SIZE)
                fs._alloc.cursor += 32 * MB_
            fds = [kernel.open(f"/mnt/ext2/scatter/f{i:03d}.dat", "r+")
                   for i in range(nfiles)]
            rng = np.random.default_rng(config.seed + trial)
            for i in rng.permutation(nfiles):
                kernel.write(fds[int(i)], b"w" * (4 * PAGE_SIZE))
            with kernel.process() as run:
                kernel.sync()
            times.append(run.elapsed)
            pages = run.counters.pages_written
            for fd in fds:
                kernel.close(fd)
        stats = summarize(times)
        result.add_row(scheduler,
                       round(config.to_paper_seconds(stats.mean), 3),
                       round(config.to_paper_seconds(stats.ci90), 3),
                       pages)
    return result


# ---------------------------------------------------------------------------
# Fragmentation ablation: aged filesystems
# ---------------------------------------------------------------------------

def run_abl_fragmentation(config: BenchConfig,
                          paper_mb: float = 64) -> ExperimentResult:
    """SLEDs gains on a clean vs aged (fragmented) filesystem.

    Fragmentation breaks files into scattered extents: linear scans pay
    seeks even without cache effects, and the SLED vector itself stays
    page-accurate (it describes cache state, not layout).  The question:
    does reordering still win when the baseline already seeks?
    """
    from repro.apps.wc import wc
    from repro.devices.disk import DiskDevice
    from repro.fs.filesystem import Ext2Like
    from repro.kernel.kernel import Kernel
    from repro.machine import Machine
    from repro.sim.rng import RngStreams

    result = ExperimentResult(
        exp_id="abl-fragmentation",
        title="SLEDs wc speedup on clean vs aged (fragmented) ext2",
        columns=["layout", "without s", "with s", "speedup"],
        paper_expectation=(
            "reordering exploits the cache either way; fragmentation "
            "slows both modes' device reads but the relative win holds"),
    )
    size = config.scaled_bytes(paper_mb)
    for layout, max_extent, gap in (("clean", 1 << 20, 0),
                                    ("aged", 8, 3)):
        rng = RngStreams(config.seed + 66)
        kernel = Kernel(cache_pages=config.cache_pages(), rng=rng,
                        noise=config.noise)
        machine = Machine(kernel=kernel)
        machine.mount("/", Ext2Like(DiskDevice(
            name="root", rng=rng.stream("root")), name="rootfs"))
        fs = Ext2Like(DiskDevice(name="frag-disk",
                                 rng=rng.stream("frag-disk")),
                      max_extent_pages=max_extent, gap_pages=gap)
        machine.mount("/mnt/ext2", fs)
        machine.boot()
        fs.create_text_file("data.txt", size, seed=config.seed)
        path = "/mnt/ext2/data.txt"
        times = {}
        for use_sleds in (False, True):
            def run(k=kernel, p=path, s=use_sleds):
                wc(k, p, use_sleds=s)

            stats = measure_runs(kernel, run, runs=max(3, config.runs // 2))
            times[use_sleds] = stats.time.mean
        result.add_row(layout,
                       round(config.to_paper_seconds(times[False]), 2),
                       round(config.to_paper_seconds(times[True]), 2),
                       round(times[False] / times[True], 2))
    return result


# ---------------------------------------------------------------------------
# POSIX-AIO style baseline (related work)
# ---------------------------------------------------------------------------

def run_abl_aio(config: BenchConfig, paper_mb: float = 64) -> ExperimentResult:
    """Asynchronous-I/O baseline vs SLEDs (paper §2, related work).

    "In theory, posting asynchronous read requests for the entire file,
    and processing them as they arrive, would allow behavior similar to
    SLEDs.  This would need to be coupled with a system-assigned buffer
    address scheme ... since allocating enough buffers for files larger
    than memory would result in significant virtual memory thrashing."

    The AIO model here: the kernel services the posted requests in its
    own optimal order (cached pages complete first, then one sequential
    device sweep — the same I/O schedule SLEDs reaches), but the
    *application* must hold completed buffers it has not consumed.  We
    charge buffer-memory pressure: once outstanding completed-but-
    unconsumed data exceeds free memory, further completions pay a
    thrashing penalty (page-out + page-in of the buffer).
    """
    from repro.apps.common import SCAN_CPU_PER_BYTE
    from repro.bench.workloads import text_workload

    result = ExperimentResult(
        exp_id="abl-aio", title="Async-I/O baseline vs SLEDs, warm ext2 wc",
        columns=["approach", "time s (paper-eq)", "notes"],
        paper_expectation=(
            "AIO matches SLEDs' I/O schedule but pays buffer thrashing "
            "once the file exceeds memory; SLEDs consumes in arrival "
            "order and needs one buffer"),
    )
    workload = text_workload(config, paper_mb, "/mnt/ext2", seed_salt=7)
    kernel = workload.kernel
    size = workload.size
    from repro.apps.wc import wc as run_wc

    # SLEDs
    kernel.warm_file(workload.path)
    with kernel.process() as sleds_run:
        run_wc(kernel, workload.path, use_sleds=True)
    result.add_row("SLEDs pick order",
                   round(config.to_paper_seconds(sleds_run.elapsed), 2),
                   "single reuse buffer")

    # AIO: same device schedule, but completed buffers accumulate.  wc
    # consumes in completion order, so in this best case AIO == SLEDs
    # minus pick CPU; the thrashing term appears when the app needs
    # *file order* (grep -n style) and must buffer out-of-order
    # completions: worst case all non-leading completions.
    kernel.drop_caches()
    kernel.warm_file(workload.path)
    with kernel.process() as aio_run:
        run_wc(kernel, workload.path, use_sleds=True)
        free_bytes = (kernel.page_cache.capacity_pages
                      * 4096 // 4)  # what the app can hold without paging
        overflow = max(0, size - free_bytes)
        if overflow:
            # page-out + page-in of the overflow through the disk
            fs = workload.machine.ext2
            kernel.clock.advance(
                2 * overflow / fs.device.spec.bandwidth, "disk")
            kernel.charge_cpu(overflow * SCAN_CPU_PER_BYTE)
    result.add_row("AIO, file-order consumer",
                   round(config.to_paper_seconds(aio_run.elapsed), 2),
                   "buffers out-of-order completions; thrashes past memory")
    return result


# ---------------------------------------------------------------------------
# Ext. E: SLEDs between client and server (distributed systems proposal)
# ---------------------------------------------------------------------------

def run_extE(config: BenchConfig, paper_mb: float = 64,
             trials: int = 6) -> ExperimentResult:
    """Client/server SLEDs over NFS.

    Scenario: another client recently read the tail of a shared file, so
    the *server's* buffer cache is warm for that region while this
    client's cache is cold.  A match is planted in the server-warm
    region.  Without server SLEDs the client sees one uniform "nfs" level
    and greps linearly from the file start; with the server reporting its
    cache state per page ("SLEDs as the vocabulary of communication
    between clients and servers"), the pick library searches the
    server-warm region first.
    """
    import numpy as np

    from repro.apps.grep import grep
    from repro.bench.workloads import NEEDLE
    from repro.devices.disk import DiskDevice
    from repro.devices.network import NfsDevice
    from repro.fs.filesystem import Ext2Like
    from repro.fs.nfs import NfsLike
    from repro.kernel.kernel import Kernel
    from repro.machine import Machine
    from repro.sim.rng import RngStreams
    from repro.sim.units import PAGE_SIZE

    result = ExperimentResult(
        exp_id="extE", title="Client/server SLEDs: grep -q a shared NFS "
                             "file whose tail is warm in the server cache",
        columns=["mode", "time s (paper-eq)", "±", "server disk reads"],
        paper_expectation=(
            "server-reported cache state lets the client search the "
            "cheap remote region first, the way local SLEDs exploit the "
            "local cache"),
    )
    size = config.scaled_bytes(paper_mb)
    warm_start = size // 2
    for server_sleds in (False, True):
        rng_streams = RngStreams(config.seed + 88)
        device = NfsDevice(name="nfs-server",
                           server_cache_bytes=size,
                           rng=rng_streams.stream("nfs"))
        kernel = Kernel(cache_pages=config.cache_pages(), rng=rng_streams,
                        noise=config.noise)
        machine = Machine(kernel=kernel)
        machine.mount("/", Ext2Like(DiskDevice(
            name="root", rng=rng_streams.stream("root")), name="rootfs"))
        fs = NfsLike(device, server_sleds=server_sleds)
        machine.mount("/mnt/nfs", fs)
        machine.boot()
        inode = fs.create_text_file("shared.txt", size, seed=config.seed)
        # the other client's accesses: tail of the file warm on the server
        base = inode.extent_map.addr_of(0)
        device.warm_server_cache(base + warm_start, size - warm_start)
        rng = np.random.default_rng(config.seed + 89)
        times = []
        disk_reads_before = device.server_disk.stats.reads
        for _ in range(trials):
            offset = int(rng.integers(warm_start + 1,
                                      size - len(NEEDLE) - 2))
            inode.content.plants = {offset: NEEDLE}
            kernel.drop_caches()  # this client is cold every trial
            # re-warm the server region (our own reads may have evicted it)
            device.warm_server_cache(base + warm_start, size - warm_start)
            with kernel.process() as run:
                found = grep(kernel, "/mnt/nfs/shared.txt", NEEDLE,
                             use_sleds=True, first_match_only=True)
            assert found.count == 1
            times.append(run.elapsed)
        stats = summarize(times)
        result.add_row(
            "server SLEDs" if server_sleds else "client-only SLEDs",
            round(config.to_paper_seconds(stats.mean), 2),
            round(config.to_paper_seconds(stats.ci90), 2),
            device.server_disk.stats.reads - disk_reads_before)
    return result


# ---------------------------------------------------------------------------
# Ext. D: zone-aware SLEDs and delivery-estimate accuracy
# ---------------------------------------------------------------------------

def run_extD(config: BenchConfig, paper_mb: float = 32) -> ExperimentResult:
    """Zone-aware sleds-table entries (paper §4.1 future version).

    Two identical files, one in the disk's fastest outer zone and one in
    the slowest inner zone.  With a single per-device table entry, the
    delivery-time estimate misses the zone difference; with per-zone
    entries ([Van97]) it tracks it.  Reported: estimate vs actual cold
    read time and the relative error.
    """
    from repro.core.delivery import sleds_total_delivery_time_path
    from repro.devices.disk import DiskDevice
    from repro.fs.filesystem import Ext2Like
    from repro.kernel.kernel import Kernel
    from repro.machine import Machine
    from repro.sim.rng import RngStreams

    result = ExperimentResult(
        exp_id="extD", title="Zone-aware SLEDs: delivery-estimate accuracy "
                             "for outer- vs inner-zone files",
        columns=["table", "file zone", "estimate s", "actual s", "error %"],
        paper_expectation=(
            "§4.1: 'entries which account for the different bandwidths of "
            "different disk zones will be added in a future version' — "
            "per-zone entries should shrink the estimate error"),
    )
    size = config.scaled_bytes(paper_mb)
    for zone_aware in (False, True):
        rng = RngStreams(config.seed + 77)
        disk = DiskDevice(name="zdisk", rng=rng.stream("zdisk"))
        kernel = Kernel(cache_pages=config.cache_pages(), rng=rng,
                        noise=config.noise)
        machine = Machine(kernel=kernel)
        fs = Ext2Like(disk, zone_aware=zone_aware)
        machine.mount("/", Ext2Like(DiskDevice(
            name="root", capacity=disk.capacity // 8,
            rng=rng.stream("root")), name="rootfs"))
        machine.mount("/mnt/ext2", fs)
        machine.boot()
        # outer file first (allocator starts at address 0 = zone 0), then
        # push the cursor deep into the last zone for the inner file
        fs.create_text_file("outer.txt", size, seed=config.seed)
        inner_start, _ = disk.zone_range(len(disk.zones) - 1)
        fs._alloc.cursor = max(fs._alloc.cursor, inner_start)
        fs.create_text_file("inner.txt", size, seed=config.seed + 1)
        for label in ("outer", "inner"):
            path = f"/mnt/ext2/{label}.txt"
            kernel.drop_caches()
            estimate = sleds_total_delivery_time_path(kernel, path)
            kernel.drop_caches()
            with kernel.process() as run:
                kernel.warm_file(path)
            actual = run.elapsed
            error = 100.0 * abs(estimate - actual) / actual
            result.add_row("per-zone" if zone_aware else "per-device",
                           label,
                           round(config.to_paper_seconds(estimate), 2),
                           round(config.to_paper_seconds(actual), 2),
                           round(error, 1))
    return result


# ---------------------------------------------------------------------------
# Page-pinning ablation (the §3.4 lock/reservation mechanism)
# ---------------------------------------------------------------------------

def _scan_under_pressure(kernel, path: str, victim_path: str,
                         pin_cached: bool, bufsize: int = 64 * 1024,
                         interfere_every: int = 4) -> None:
    """SLEDs scan of ``path`` while a competing reader streams
    ``victim_path``, putting eviction pressure on the cached chunks the
    session has not consumed yet."""
    fd = kernel.open(path)
    vfd = kernel.open(victim_path)
    try:
        sleds_pick_init(kernel, fd, bufsize, pin_cached=pin_cached)
        picks = 0
        while True:
            advice = sleds_pick_next_read(kernel, fd)
            if advice is None:
                break
            offset, nbytes = advice
            kernel.lseek(fd, offset)
            kernel.read(fd, nbytes)
            picks += 1
            if picks % interfere_every == 0:
                if not kernel.read(vfd, 4 * bufsize):
                    kernel.lseek(vfd, 0)
        sleds_pick_finish(kernel, fd)
    finally:
        kernel.close(vfd)
        kernel.close(fd)


def run_abl_pin(config: BenchConfig, paper_mb: float = 64) -> ExperimentResult:
    """Pinning the cached chunks at pick-init vs trusting LRU (paper §3.4:
    "adding a lock or reservation mechanism would improve the accuracy
    and lifetime of SLEDs")."""
    result = ExperimentResult(
        exp_id="abl-pin", title="Pick-session page pinning under eviction "
                                "pressure (§3.4 lock mechanism)",
        columns=["pinning", "time s (paper-eq)", "±", "device pages",
                 "forced pin evictions"],
        paper_expectation=(
            "without locks, a competing reader evicts cached-but-unread "
            "chunks and the SLED estimates go stale; pinning preserves "
            "the promised low-latency data"),
    )
    for pin_cached in (False, True):
        workload = text_workload(config, paper_mb, "/mnt/ext2", seed_salt=6)
        kernel = workload.kernel
        fs = workload.machine.ext2
        victim_size = config.scaled_bytes(paper_mb)
        fs.create_text_file("bench/pressure.txt", victim_size,
                            seed=config.seed + 555)
        victim = "/mnt/ext2/bench/pressure.txt"

        def run(k=kernel, p=workload.path, v=victim, pin=pin_cached):
            # protocol: the target file was just used (warm), then the
            # SLEDs scan races the competing reader; the warm pass is
            # identical in both arms
            k.warm_file(p)
            _scan_under_pressure(k, p, v, pin_cached=pin)

        stats = measure_runs(kernel, run, runs=max(3, config.runs // 2))
        result.add_row("pinned" if pin_cached else "unpinned",
                       round(config.to_paper_seconds(stats.time.mean), 2),
                       round(config.to_paper_seconds(stats.time.ci90), 2),
                       round(stats.pages.mean),
                       kernel.page_cache.stats.forced_pinned_evictions)
    return result


# ---------------------------------------------------------------------------
# mmap-friendly library ablation
# ---------------------------------------------------------------------------

def run_abl_mmap(config: BenchConfig,
                 sizes_mb: tuple[float, ...] = (24, 40, 64)) -> ExperimentResult:
    """read()-based vs mmap-friendly SLEDs library (paper §5.2).

    The paper attributes the small-file slowdown of SLEDs-grep partly to
    "more data copying.  We used read(), rather than mmap() ... An
    mmap-friendly SLEDs library is feasible, which should reduce the CPU
    penalty."  This ablation measures exactly that penalty.
    """
    from repro.apps.grep import grep
    from repro.bench.workloads import NEEDLE, plant_needles

    import numpy as np

    result = ExperimentResult(
        exp_id="abl-mmap", title="SLEDs grep via read() vs mmap, warm ext2",
        columns=["MB", "plain s", "sleds read() s", "sleds mmap s",
                 "mmap recovers %"],
        paper_expectation=(
            "mmap removes the copy share of the SLEDs CPU penalty; "
            "record-management cost remains"),
    )
    for index, paper_mb in enumerate(sizes_mb):
        size = config.scaled_bytes(paper_mb)
        rng = np.random.default_rng(config.seed + 17 * index)
        plants = plant_needles(config, size, count=10, rng=rng)
        times = {}
        for mode in ("plain", "read", "mmap"):
            workload = text_workload(config, paper_mb, "/mnt/ext2",
                                     plants=plants, seed_salt=40 + index)
            kernel = workload.kernel

            def run(k=kernel, p=workload.path, m=mode):
                grep(k, p, NEEDLE, use_sleds=(m != "plain"),
                     via_mmap=(m == "mmap"))

            stats = measure_runs(kernel, run, runs=max(3, config.runs // 2))
            times[mode] = stats.time.mean
        overhead_read = times["read"] - times["plain"]
        overhead_mmap = times["mmap"] - times["plain"]
        recovered = (0.0 if overhead_read <= 0 else
                     100.0 * (overhead_read - overhead_mmap) / overhead_read)
        result.add_row(paper_mb,
                       round(config.to_paper_seconds(times["plain"]), 2),
                       round(config.to_paper_seconds(times["read"]), 2),
                       round(config.to_paper_seconds(times["mmap"]), 2),
                       round(recovered, 1))
    result.notes.append(
        "recovery can exceed 100%: mmap also skips the kernel "
        "copy-to-user that even plain read()-grep pays; 0 means SLEDs "
        "had no overhead to recover at that size")
    return result


# ---------------------------------------------------------------------------
# Readahead ablation
# ---------------------------------------------------------------------------

def run_abl_readahead(config: BenchConfig,
                      paper_mb: float = 64) -> ExperimentResult:
    """Cold-cache linear scan time vs readahead window cap."""
    result = ExperimentResult(
        exp_id="abl-readahead", title="Readahead cluster-size ablation: "
                                      "cold-cache linear wc, ext2",
        columns=["max window (pages)", "time s (paper-eq)", "faults"],
        paper_expectation=(
            "bigger clusters amortise per-access latency; the baseline's "
            "linear scans must stream near device bandwidth"),
    )
    for window in (1, 4, 16, 32):
        workload = text_workload(config, paper_mb, "/mnt/ext2", seed_salt=4)
        kernel = workload.kernel
        kernel.readahead_max_pages = window
        times = []
        faults = []
        for _ in range(max(3, config.runs // 3)):
            kernel.drop_caches()
            with kernel.process() as run:
                wc(kernel, workload.path)
            times.append(run.elapsed)
            faults.append(float(run.hard_faults))
        result.add_row(window,
                       round(config.to_paper_seconds(
                           summarize(times).mean), 2),
                       round(summarize(faults).mean))
    return result
