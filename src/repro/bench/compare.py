"""Compare two experiment runs (regression detection for the harness).

``sleds-bench --csv-dir results/`` writes one CSV per experiment; this
module diffs two such directories (or individual files) and reports rows
whose numeric cells drifted beyond a tolerance — the guard a maintainer
wants when touching the device models or the cost constants.

It also diffs the ``BENCH_*.json`` payloads the perf benchmarks publish
at the repo root: every numeric leaf is compared against the committed
baseline, except subtrees under a ``wall_clock`` key — those hold
host-dependent wall-time measurements that legitimately vary between
machines, while everything else is virtual-time/deterministic and must
not drift.  ``sleds-bench check`` is the CI entry point.

CLI: ``python -m repro.bench.compare old_results/ new_results/ [--rtol 0.2]``
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

#: JSON keys whose whole subtree is excluded from the regression gate
WALL_CLOCK_KEY = "wall_clock"


@dataclass
class Drift:
    """One cell that moved beyond tolerance."""

    experiment: str
    row_key: str
    column: str
    old: float
    new: float

    @property
    def relative(self) -> float:
        base = max(abs(self.old), 1e-12)
        return abs(self.new - self.old) / base

    def __str__(self) -> str:
        return (f"{self.experiment}[{self.row_key}].{self.column}: "
                f"{self.old:g} -> {self.new:g} "
                f"({100 * self.relative:+.1f}%)")


@dataclass
class Comparison:
    """The full diff between two result sets."""

    drifts: list[Drift] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)   # in old, not new
    added: list[str] = field(default_factory=list)     # in new, not old
    shape_changes: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.drifts or self.missing or self.shape_changes)

    def summary(self) -> str:
        lines = []
        for name in self.missing:
            lines.append(f"missing from new run: {name}")
        for name in self.added:
            lines.append(f"new experiment: {name}")
        lines.extend(self.shape_changes)
        lines.extend(str(d) for d in self.drifts)
        if not lines:
            lines.append("no drift beyond tolerance")
        return "\n".join(lines)


def _load_csv(path: Path) -> tuple[list[str], list[list[str]]]:
    with path.open() as handle:
        rows = list(csv.reader(handle))
    if not rows:
        return [], []
    return rows[0], rows[1:]


def _to_float(cell: str) -> float | None:
    try:
        return float(cell)
    except ValueError:
        return None


def compare_files(old: Path, new: Path, rtol: float = 0.25,
                  atol: float = 1e-9) -> Comparison:
    """Diff two experiment CSVs row by row (rows matched positionally)."""
    result = Comparison()
    name = old.stem
    old_header, old_rows = _load_csv(old)
    new_header, new_rows = _load_csv(new)
    if old_header != new_header:
        result.shape_changes.append(
            f"{name}: columns changed {old_header} -> {new_header}")
        return result
    if len(old_rows) != len(new_rows):
        result.shape_changes.append(
            f"{name}: row count changed {len(old_rows)} -> {len(new_rows)}")
        return result
    for old_row, new_row in zip(old_rows, new_rows):
        key = old_row[0] if old_row else "?"
        for column, old_cell, new_cell in zip(old_header, old_row, new_row):
            old_value = _to_float(old_cell)
            new_value = _to_float(new_cell)
            if old_value is None or new_value is None:
                if old_cell != new_cell:
                    result.shape_changes.append(
                        f"{name}[{key}].{column}: "
                        f"{old_cell!r} -> {new_cell!r}")
                continue
            if abs(new_value - old_value) > (
                    atol + rtol * max(abs(old_value), 1e-12)):
                result.drifts.append(Drift(name, key, column,
                                           old_value, new_value))
    return result


def compare_dirs(old_dir: Path, new_dir: Path,
                 rtol: float = 0.25) -> Comparison:
    """Diff every experiment CSV present in either directory."""
    result = Comparison()
    old_files = {p.name: p for p in sorted(old_dir.glob("*.csv"))}
    new_files = {p.name: p for p in sorted(new_dir.glob("*.csv"))}
    result.missing = sorted(set(old_files) - set(new_files))
    result.added = sorted(set(new_files) - set(old_files))
    for name in sorted(set(old_files) & set(new_files)):
        sub = compare_files(old_files[name], new_files[name], rtol=rtol)
        result.drifts.extend(sub.drifts)
        result.shape_changes.extend(sub.shape_changes)
    return result


def _flatten(value, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a JSON payload keyed by dotted/indexed path.

    ``{"rows": [{"npages": 4}]}`` flattens to ``{"rows[0].npages": 4.0}``.
    Subtrees under a key containing :data:`WALL_CLOCK_KEY` are dropped:
    wall-time measurements vary with the host and must not gate CI.
    Booleans, strings and nulls are ignored (shape changes catch those
    via key-set comparison).
    """
    flat: dict[str, float] = {}
    if isinstance(value, dict):
        for key, item in value.items():
            if WALL_CLOCK_KEY in key:
                continue
            path = f"{prefix}.{key}" if prefix else str(key)
            flat.update(_flatten(item, path))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            flat.update(_flatten(item, f"{prefix}[{index}]"))
    elif isinstance(value, bool):
        pass
    elif isinstance(value, (int, float)):
        flat[prefix] = float(value)
    return flat


def _split_path(path: str) -> tuple[str, str]:
    """Split a flattened path into (row_key, column) for Drift display."""
    head, dot, leaf = path.rpartition(".")
    if not dot:
        return "", path
    return head, leaf


def compare_json_files(old: Path, new: Path, rtol: float = 0.25,
                       atol: float = 1e-9) -> Comparison:
    """Diff two benchmark JSON payloads leaf by leaf."""
    result = Comparison()
    name = old.stem
    old_flat = _flatten(json.loads(old.read_text()))
    new_flat = _flatten(json.loads(new.read_text()))
    if set(old_flat) != set(new_flat):
        gone = sorted(set(old_flat) - set(new_flat))
        fresh = sorted(set(new_flat) - set(old_flat))
        result.shape_changes.append(
            f"{name}: metric set changed (-{gone} +{fresh})")
        return result
    for path in sorted(old_flat):
        old_value = old_flat[path]
        new_value = new_flat[path]
        if abs(new_value - old_value) > (
                atol + rtol * max(abs(old_value), 1e-12)):
            row_key, column = _split_path(path)
            result.drifts.append(Drift(name, row_key, column,
                                       old_value, new_value))
    return result


def compare_bench_dirs(old_dir: Path, new_dir: Path,
                       rtol: float = 0.25) -> Comparison:
    """Diff every ``BENCH_*.json`` present in either directory."""
    result = Comparison()
    old_files = {p.name: p for p in sorted(old_dir.glob("BENCH_*.json"))}
    new_files = {p.name: p for p in sorted(new_dir.glob("BENCH_*.json"))}
    result.missing = sorted(set(old_files) - set(new_files))
    result.added = sorted(set(new_files) - set(old_files))
    for name in sorted(set(old_files) & set(new_files)):
        sub = compare_json_files(old_files[name], new_files[name], rtol=rtol)
        result.drifts.extend(sub.drifts)
        result.shape_changes.extend(sub.shape_changes)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Diff two sleds-bench result directories.")
    parser.add_argument("old", type=Path)
    parser.add_argument("new", type=Path)
    parser.add_argument("--rtol", type=float, default=0.25,
                        help="relative tolerance before a cell counts "
                             "as drift (default 0.25)")
    args = parser.parse_args(argv)
    if args.old.is_dir():
        comparison = compare_dirs(args.old, args.new, rtol=args.rtol)
    elif args.old.suffix == ".json":
        comparison = compare_json_files(args.old, args.new, rtol=args.rtol)
    else:
        comparison = compare_files(args.old, args.new, rtol=args.rtol)
    print(comparison.summary())
    return 0 if comparison.clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
