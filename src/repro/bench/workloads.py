"""Benchmark workload construction: machines, test files, scaling.

The paper's experiments run on a 64 MB machine (~42 MB of usable file
cache) against files of 8–128 MB.  Simulating full-size files in pure
Python works but is slow, so the harness scales everything linearly by
``scale`` (default 16): the cache becomes 42/16 MB, "8 MB" becomes 0.5 MB,
and so on.  Every cost in the model (pages faulted, clusters transferred,
bytes copied) is linear in file size, so reported virtual times multiply
back by ``scale`` to paper-equivalent seconds; the harness reports both.
Shapes — where the SLEDs advantage starts, the peak speedup ratio — depend
only on the file:cache ratio and the device speed ratios, which scaling
preserves.  ``--full-scale`` (scale=1) runs unscaled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machine import Machine
from repro.sim.units import MB, PAGE_SIZE

#: usable file-cache size on the paper's 64 MB machine
PAPER_CACHE_MB = 42
#: background-activity noise level used in measured experiments
DEFAULT_NOISE = 0.03
#: grep needle guaranteed absent from the synthetic corpus
NEEDLE = b"XNEEDLEX"


@dataclass(frozen=True)
class BenchConfig:
    """Knobs shared by every experiment (hashable: sweeps are memoised)."""

    scale: int = 16
    runs: int = 12
    seed: int = 20000101
    noise: float = DEFAULT_NOISE
    policy: str = "lru"

    def scaled_bytes(self, paper_mb: float) -> int:
        """Paper-quoted MB -> scaled simulated bytes (page aligned)."""
        nbytes = int(paper_mb * MB / self.scale)
        return max(PAGE_SIZE, (nbytes // PAGE_SIZE) * PAGE_SIZE)

    def cache_pages(self) -> int:
        return max(16, self.scaled_bytes(PAPER_CACHE_MB) // PAGE_SIZE)

    def to_paper_seconds(self, virtual_seconds: float) -> float:
        """Scaled virtual time -> paper-equivalent seconds."""
        return virtual_seconds * self.scale


@dataclass
class Workload:
    """A machine plus the file(s) an experiment runs against."""

    machine: Machine
    path: str
    size: int
    extra: dict = field(default_factory=dict)

    @property
    def kernel(self):
        return self.machine.kernel


def make_machine(config: BenchConfig, profile: str = "unix",
                 seed_salt: int = 0) -> Machine:
    """A booted machine of the requested profile at the configured scale."""
    seed = config.seed + seed_salt
    if profile == "unix":
        machine = Machine.unix_utilities(
            cache_pages=config.cache_pages(), seed=seed,
            noise=config.noise, policy=config.policy)
    elif profile == "lheasoft":
        machine = Machine.lheasoft(
            cache_pages=config.cache_pages(), seed=seed,
            noise=config.noise, policy=config.policy)
    elif profile == "hsm":
        machine = Machine.hsm(
            cache_pages=config.cache_pages(),
            stage_pages=config.cache_pages() * 4, seed=seed,
            noise=config.noise, policy=config.policy)
    else:
        raise ValueError(f"unknown machine profile {profile!r}")
    machine.boot()
    return machine


def text_workload(config: BenchConfig, paper_mb: float, fs_mount: str,
                  profile: str = "unix", plants: dict[int, bytes] | None = None,
                  seed_salt: int = 0) -> Workload:
    """A machine with one synthetic text file on the chosen mount."""
    machine = make_machine(config, profile=profile, seed_salt=seed_salt)
    size = config.scaled_bytes(paper_mb)
    fs = machine.filesystems[fs_mount]
    fs.create_text_file("bench/data.txt", size,
                        seed=config.seed + seed_salt, plants=plants or {})
    return Workload(machine=machine, path=f"{fs_mount}/bench/data.txt",
                    size=size)


def plant_needles(config: BenchConfig, size: int, count: int,
                  rng: np.random.Generator,
                  needle: bytes = NEEDLE) -> dict[int, bytes]:
    """Random non-overlapping needle placements inside a file."""
    if count <= 0:
        return {}
    plants: dict[int, bytes] = {}
    guard = len(needle) + 2
    attempts = 0
    while len(plants) < count and attempts < count * 100:
        attempts += 1
        offset = int(rng.integers(1, max(2, size - guard)))
        if any(abs(offset - o) < guard for o in plants):
            continue
        plants[offset] = needle
    return plants


def fits_workload(config: BenchConfig, paper_mb: float,
                  fs_mount: str = "/mnt/ext2", width: int = 512,
                  seed_salt: int = 0) -> Workload:
    """A LHEASOFT machine with an int16 FITS image of ~paper_mb (scaled)."""
    from repro.fits.cfitsio import create_image

    machine = make_machine(config, profile="lheasoft", seed_salt=seed_salt)
    size = config.scaled_bytes(paper_mb)
    # int16 image: height chosen so the data unit is ~size bytes and
    # divisible by a 4x4 boxcar
    height = max(4, (size // (2 * width) // 4) * 4)
    rng = np.random.default_rng(config.seed + seed_salt)
    image = rng.integers(0, 4096, size=(height, width), dtype=np.int16)
    path = f"{fs_mount}/bench/image.fits"
    create_image(machine.kernel, path, image)
    return Workload(machine=machine, path=path, size=size,
                    extra={"width": width, "height": height})
