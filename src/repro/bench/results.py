"""Publishing helper for the perf benchmarks' ``BENCH_*.json`` payloads.

The committed copies at the repo root are the regression baselines that
``sleds-bench check`` gates CI against; the copies under ``results/``
are the per-run artifacts.  Payloads must keep host-dependent wall-time
measurements under a ``wall_clock`` key — the gate skips those subtrees
(see :mod:`repro.bench.compare`) while every virtual-time metric is
compared leaf by leaf against the baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Repository root (``src/repro/bench/results.py`` → three parents up).
REPO_ROOT = Path(__file__).resolve().parents[3]


def publish_bench(name: str, payload: dict,
                  repo_root: Path | None = None) -> list[Path]:
    """Write ``BENCH_<name>.json`` to the repo root and ``results/``.

    Returns the paths written.  The two copies are byte-identical; the
    root one is meant to be committed as the check baseline, the
    ``results/`` one uploaded as a CI artifact.
    """
    root = REPO_ROOT if repo_root is None else repo_root
    text = json.dumps(payload, indent=2, sort_keys=False) + "\n"
    paths = [root / f"BENCH_{name}.json",
             root / "results" / f"BENCH_{name}.json"]
    for path in paths:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return paths
