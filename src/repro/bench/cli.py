"""Benchmark command line: ``python -m repro.bench`` / ``sleds-bench``.

Examples::

    sleds-bench --list
    sleds-bench --run fig7 fig8
    sleds-bench --run all --runs 5 --csv-dir results/
    sleds-bench --run fig11 --full-scale      # unscaled (slow)
    sleds-bench check                         # gate new BENCH_*.json
    sleds-bench check --baseline . --new results --rtol 0.25
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench import ablations, experiments
from repro.bench.workloads import BenchConfig

EXPERIMENTS = {
    "table2": experiments.run_table2,
    "table3": experiments.run_table3,
    "table4": experiments.run_table4,
    "fig3": experiments.run_fig3,
    "fig7": experiments.run_fig7,
    "fig8": experiments.run_fig8,
    "fig9": experiments.run_fig9,
    "fig10": experiments.run_fig10,
    "fig11": experiments.run_fig11,
    "fig12": experiments.run_fig12,
    "fig13": experiments.run_fig13,
    "fig14": experiments.run_fig14,
    "fig15": experiments.run_fig15,
    "extA": ablations.run_extA,
    "extB": ablations.run_extB,
    "extC": ablations.run_extC,
    "extD": ablations.run_extD,
    "extE": ablations.run_extE,
    "extF": ablations.run_extF,
    "extG": ablations.run_extG,
    "extH": ablations.run_extH,
    "extI": ablations.run_extI,
    "extJ": ablations.run_extJ,
    "abl-pick-order": ablations.run_abl_pick_order,
    "abl-readahead": ablations.run_abl_readahead,
    "abl-mmap": ablations.run_abl_mmap,
    "abl-pin": ablations.run_abl_pin,
    "abl-fragmentation": ablations.run_abl_fragmentation,
    "abl-aio": ablations.run_abl_aio,
    "abl-scheduler": ablations.run_abl_scheduler,
}

DESCRIPTIONS = {
    "table2": "device characterisation, Unix-utility machine",
    "table3": "device characterisation, LHEASOFT machine",
    "table4": "lines of code modified per application",
    "fig3": "LRU two-pass pathology trace",
    "fig7": "wc over NFS, time vs size",
    "fig8": "wc over NFS, speedup ratio",
    "fig9": "wc page faults on CD-ROM",
    "fig10": "grep all matches on CD-ROM",
    "fig11": "grep -q one match on ext2",
    "fig12": "grep -q speedup ratio",
    "fig13": "CDF of grep -q on NFS, 64 MB",
    "fig14": "fimhisto elapsed time, ext2",
    "fig15": "fimgbin elapsed time, ext2, 4x/16x",
    "extA": "HSM amplification (extension)",
    "extB": "cache-policy ablation (extension)",
    "extC": "SLED staleness / refresh (extension)",
    "extD": "zone-aware SLEDs estimate accuracy (extension)",
    "extE": "client/server SLEDs over NFS (extension)",
    "extF": "device independence: SLEDs on flash (extension)",
    "extG": "progress estimators: dynamic vs SLEDs (paper §3.3)",
    "extH": "concurrent scans, system-wide load (better citizen)",
    "extI": "file sets over tape: inter-file ordering ([Ste97])",
    "extJ": "find -exec grep after interrupted search (§5.2 anecdote)",
    "abl-pick-order": "pick-order ablation",
    "abl-readahead": "readahead cluster ablation",
    "abl-mmap": "read() vs mmap SLEDs library (paper §5.2)",
    "abl-pin": "page pinning under eviction pressure (paper §3.4)",
    "abl-fragmentation": "SLEDs gains on aged (fragmented) filesystems",
    "abl-aio": "async-I/O baseline vs SLEDs (paper §2)",
    "abl-scheduler": "writeback I/O scheduler ablation (FCFS/SSTF/C-LOOK)",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sleds-bench",
        description="Regenerate the tables and figures of the SLEDs paper "
                    "against the simulated storage stack.")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--run", nargs="+", metavar="EXP",
                        help="experiment ids to run, or 'all'")
    parser.add_argument("--runs", type=int, default=12,
                        help="measured runs per point (paper used 12)")
    parser.add_argument("--scale", type=int, default=16,
                        help="linear down-scaling factor (default 16)")
    parser.add_argument("--full-scale", action="store_true",
                        help="run unscaled (scale=1); slow")
    parser.add_argument("--seed", type=int, default=20000101)
    parser.add_argument("--noise", type=float, default=0.03,
                        help="background-activity noise level")
    parser.add_argument("--csv-dir", type=Path, default=None,
                        help="also write one CSV per experiment here")
    parser.add_argument("--chart", action="store_true",
                        help="render an ASCII chart under each experiment")
    return parser


def run_check(argv: list[str]) -> int:
    """``sleds-bench check``: gate fresh BENCH_*.json against baselines.

    Wall-clock subtrees are excluded (host-dependent); everything else is
    virtual-time output and must stay within tolerance of the committed
    baselines at the repo root.
    """
    from repro.bench.compare import compare_bench_dirs

    parser = argparse.ArgumentParser(
        prog="sleds-bench check",
        description="Compare freshly generated BENCH_*.json benchmark "
                    "payloads against committed baselines; non-zero exit "
                    "on drift beyond tolerance.")
    parser.add_argument("--baseline", type=Path, default=Path("."),
                        help="directory with baseline BENCH_*.json "
                             "(default: repo root)")
    parser.add_argument("--new", type=Path, default=Path("results"),
                        help="directory with freshly generated "
                             "BENCH_*.json (default: results/)")
    parser.add_argument("--rtol", type=float, default=0.25,
                        help="relative tolerance before a metric counts "
                             "as a regression (default 0.25)")
    args = parser.parse_args(argv)
    if not args.baseline.is_dir():
        print(f"baseline directory not found: {args.baseline}",
              file=sys.stderr)
        return 2
    if not args.new.is_dir():
        print(f"new-results directory not found: {args.new}",
              file=sys.stderr)
        return 2
    baselines = sorted(args.baseline.glob("BENCH_*.json"))
    if not baselines:
        print(f"no BENCH_*.json baselines under {args.baseline}",
              file=sys.stderr)
        return 2
    comparison = compare_bench_dirs(args.baseline, args.new,
                                    rtol=args.rtol)
    print(f"checking {len(baselines)} baseline(s) from {args.baseline} "
          f"against {args.new} (rtol={args.rtol:g})")
    print(comparison.summary())
    if comparison.clean:
        print("bench check: PASS")
        return 0
    print("bench check: FAIL", file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        return run_check(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list or not args.run:
        for exp_id in EXPERIMENTS:
            print(f"{exp_id:16s} {DESCRIPTIONS[exp_id]}")
        return 0
    names = list(EXPERIMENTS) if args.run == ["all"] else args.run
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    config = BenchConfig(
        scale=1 if args.full_scale else args.scale,
        runs=args.runs, seed=args.seed, noise=args.noise)
    for name in names:
        started = time.time()
        result = EXPERIMENTS[name](config)
        print(result.to_text())
        if args.chart:
            from repro.bench.plotting import chart_result
            print()
            print(chart_result(result))
        print(f"[{name} completed in {time.time() - started:.1f}s "
              f"wall clock]\n")
        if args.csv_dir is not None:
            args.csv_dir.mkdir(parents=True, exist_ok=True)
            (args.csv_dir / f"{name}.csv").write_text(result.to_csv())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
