"""Experiment result containers and ASCII/CSV rendering.

Every experiment produces an :class:`ExperimentResult`: a titled table of
rows plus free-text notes including the paper's expectation, so the
harness output can be compared against the paper figure by eye and by the
shape checks in ``benchmarks/``.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    exp_id: str
    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    paper_expectation: str = ""

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, expected {len(self.columns)}")
        self.rows.append(list(values))

    def column(self, name: str) -> list:
        """All values of one column (for shape assertions in benches)."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    # -- rendering -------------------------------------------------------

    def to_text(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]),
                max((len(row[i]) for row in cells), default=0))
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.exp_id}: {self.title} =="]
        if self.paper_expectation:
            lines.append(f"paper: {self.paper_expectation}")
        header = "  ".join(c.rjust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buf.getvalue()


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
