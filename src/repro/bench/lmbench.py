"""lmbench-style boot-time characterisation of the mounted storage levels.

The paper fills the kernel sleds table at boot: "The latency and bandwidth
for both local and network file systems are obtained by running the lmbench
benchmark.  ...  The script fills the kernel table via a new ioctl call,
FSLEDS_FILL."

We do the same against the simulated devices: small random reads measure
time-to-first-byte, a long sequential read measures sustained bandwidth,
and the results go through ``FSLEDS_FILL``.  Tape levels are taken from the
drive's nominal spec (lmbench never ran against tape; the HSM filesystem
overrides per-page with live locate estimates anyway).

Regenerates the paper's Tables 2 and 3 (see ``repro.bench.experiments``).
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import Device
from repro.devices.memory import MemoryDevice
from repro.devices.tape import TapeDevice
from repro.kernel.ioctl import FSLEDS_FILL
from repro.kernel.kernel import Kernel
from repro.sim.units import KB, MB, PAGE_SIZE

LATENCY_PROBES = 64
BANDWIDTH_PROBE_BYTES = 8 * MB
BANDWIDTH_CHUNK = 64 * KB


def measure_latency(device: Device, probes: int = LATENCY_PROBES,
                    seed: int = 42, start: int | None = None,
                    end: int | None = None) -> float:
    """Mean time-to-first-byte of small random reads in ``[start, end)``.

    Subtracts the one-page transfer component so the result is a pure
    latency figure, the way lmbench separates ``lat`` from ``bw``.
    """
    rng = np.random.default_rng(seed)
    lo = start or 0
    hi = end if end is not None else device.capacity
    limit = max(lo + 1, hi - PAGE_SIZE)
    total = 0.0
    for _ in range(probes):
        addr = int(rng.integers(lo, limit)) & ~(PAGE_SIZE - 1)
        total += device.read(max(lo, addr), PAGE_SIZE)
    device.reset_state()
    mean = total / probes
    transfer = PAGE_SIZE / device.spec.bandwidth
    return max(0.0, mean - transfer)


def measure_bandwidth(device: Device,
                      nbytes: int = BANDWIDTH_PROBE_BYTES,
                      chunk: int = BANDWIDTH_CHUNK,
                      start: int | None = None,
                      end: int | None = None) -> float:
    """Sustained sequential read bandwidth in bytes/second.

    Without an explicit range the probe streams from mid-device, which for
    a zoned disk lands in the middle zone — the representative figure
    lmbench would report for a whole-disk average (outer zones are faster,
    inner slower; see [Van97]).  Zone-aware filesystems pass per-zone
    ranges and get per-zone rates.
    """
    lo = start or 0
    hi = end if end is not None else device.capacity
    nbytes = min(nbytes, hi - lo)
    probe_start = (lo + (hi - lo - nbytes) // 2) & ~(PAGE_SIZE - 1)
    probe_start = max(lo, probe_start)
    total = 0.0
    done = 0
    while done < nbytes:
        take = min(chunk, nbytes - done)
        total += device.read(probe_start + done, take)
        done += take
    device.reset_state()
    return nbytes / total if total > 0 else device.spec.bandwidth


def characterize(device: Device, start: int | None = None,
                 end: int | None = None) -> tuple[float, float]:
    """(latency, bandwidth) for one device (optionally one region)."""
    if isinstance(device, TapeDevice):
        return device.spec.latency, device.spec.bandwidth
    if isinstance(device, MemoryDevice):
        # lmbench lat_mem_rd / bcopy: the model is exact, one probe suffices
        return device.spec.latency, device.spec.bandwidth
    latency = measure_latency(device)
    bandwidth = measure_bandwidth(device, start=start, end=end)
    device.stats.reset()  # boot-time probing is not part of any experiment
    return latency, bandwidth


def characterize_levels(kernel: Kernel) -> dict[str, tuple[float, float]]:
    """Characterise memory plus every level of every mounted filesystem."""
    entries: dict[str, tuple[float, float]] = {
        "memory": characterize(kernel.memory),
    }
    for _, fs in kernel.mounts():
        for key, (device, start, end) in fs.characterization_jobs().items():
            if key not in entries:
                entries[key] = characterize(device, start=start, end=end)
        for key, row in fs.static_levels().items():
            entries.setdefault(key, row)
    return entries


def boot_fill(kernel: Kernel) -> dict[str, tuple[float, float]]:
    """The boot script: characterise and install via FSLEDS_FILL."""
    entries = characterize_levels(kernel)
    kernel.ioctl(-1, FSLEDS_FILL, entries)
    return entries
