"""Static lines-of-code accounting, regenerating the paper's Table 4.

The paper reports, per application, how many source lines were added or
modified to adopt SLEDs.  Our equivalent: for each ported application
module, count total source lines and the *SLEDs-specific* lines — lines
inside functions whose names mark them as SLEDs variants, plus lines
elsewhere that reference the SLEDs API.  The absolute numbers differ from
the C originals (Python is denser and our apps are reimplementations, not
patches), but the *ordering* — grep most invasive, wc and find cheapest —
is the reproducible claim.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

_SLEDS_TOKENS = (
    "sleds", "sled_", "Sled", "ffsleds", "read_sleds_order",
    "SLEDS_", "delivery_time", "LatencyPredicate", "parse_latency",
)


@dataclass(frozen=True)
class LocReport:
    """One application's line counts."""

    application: str
    total_lines: int
    sleds_lines: int
    paper_modified: int | None
    paper_total: int | None


def _function_line_spans(tree: ast.AST) -> list[tuple[str, int, int]]:
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            spans.append((node.name, node.lineno, node.end_lineno or node.lineno))
    return spans


def count_sleds_lines(source: str) -> tuple[int, int]:
    """(total code lines, SLEDs-specific lines) for one module."""
    lines = source.splitlines()
    code_line_numbers = [
        i + 1 for i, line in enumerate(lines)
        if line.strip() and not line.strip().startswith("#")
    ]
    tree = ast.parse(source)
    sleds_spans = [
        (lo, hi) for name, lo, hi in _function_line_spans(tree)
        if "sleds" in name.lower()
    ]

    def in_sleds_function(lineno: int) -> bool:
        return any(lo <= lineno <= hi for lo, hi in sleds_spans)

    sleds_lines = 0
    for lineno in code_line_numbers:
        text = lines[lineno - 1]
        if in_sleds_function(lineno) or any(
                token in text for token in _SLEDS_TOKENS):
            sleds_lines += 1
    return len(code_line_numbers), sleds_lines


#: application -> (module paths, paper "modified", paper "total")
TABLE4_APPS = {
    "grep": (["apps/grep.py"], 560, 1930),
    "wc": (["apps/wc.py"], 140, 530),
    "find": (["apps/findutil.py"], 70, 1600),
    "gmc": (["apps/gmc.py"], 93, 1500),
    "cfitsio (ff library)": (["core/ffsleds.py", "fits/cfitsio.py"],
                             190, 101_000),
    "fimhisto": (["lhea/fimhisto.py"], 49, 645),
    "fimgbin": (["lhea/fimgbin.py"], 45, 870),
}


def table4_reports(package_root: Path | None = None) -> list[LocReport]:
    """Count every Table-4 application in this repository."""
    if package_root is None:
        package_root = Path(__file__).resolve().parent.parent
    reports = []
    for app, (paths, paper_mod, paper_total) in TABLE4_APPS.items():
        total = sleds = 0
        for rel in paths:
            source = (package_root / rel).read_text()
            t, s = count_sleds_lines(source)
            total += t
            sleds += s
        reports.append(LocReport(application=app, total_lines=total,
                                 sleds_lines=sleds,
                                 paper_modified=paper_mod,
                                 paper_total=paper_total))
    return reports
