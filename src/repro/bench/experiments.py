"""Experiment runners: one per table/figure of the paper's evaluation.

Each runner takes a :class:`~repro.bench.workloads.BenchConfig` and
returns an :class:`~repro.bench.report.ExperimentResult` whose rows mirror
the paper's plot series.  Times are reported in *paper-equivalent seconds*
(virtual seconds × scale; see workloads module) next to the raw virtual
measurement; page-fault counts are likewise scaled.  Expensive sweeps are
memoised per config so derived figures (8 from 7, 12 from 11) don't rerun.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.apps.grep import grep
from repro.apps.wc import wc
from repro.bench.loc_count import table4_reports
from repro.bench.measure import RunStats, measure_runs, summarize
from repro.bench.report import ExperimentResult
from repro.bench.workloads import (
    NEEDLE,
    BenchConfig,
    Workload,
    fits_workload,
    make_machine,
    plant_needles,
    text_workload,
)
from repro.cache.page_cache import PageCache
from repro.lhea.fimgbin import fimgbin
from repro.lhea.fimhisto import fimhisto
from repro.sim.units import MB

# ---------------------------------------------------------------------------
# Tables 2 and 3: device characterisation
# ---------------------------------------------------------------------------

#: paper Table 2 rows: level -> (latency seconds, bandwidth MB/s)
PAPER_TABLE2 = {
    "memory": (175e-9, 48.0),
    "ext2": (18e-3, 9.0),
    "iso9660": (130e-3, 2.8),
    "nfs": (270e-3, 1.0),
}
PAPER_TABLE3 = {
    "memory": (210e-9, 87.0),
    "ext2": (16.5e-3, 7.0),
}


def _device_table(config: BenchConfig, profile: str,
                  paper: dict[str, tuple[float, float]],
                  exp_id: str, title: str) -> ExperimentResult:
    machine = make_machine(config, profile=profile)
    entries = machine.boot()
    result = ExperimentResult(
        exp_id=exp_id, title=title,
        columns=["level", "latency", "paper latency",
                 "bandwidth MB/s", "paper MB/s"],
        paper_expectation="measured levels within ~15% of the paper's rows",
    )
    for key in sorted(entries):
        if key == "rootfs":
            continue
        latency, bandwidth = entries[key]
        paper_lat, paper_bw = paper.get(key, (float("nan"), float("nan")))
        result.add_row(key, _lat_str(latency), _lat_str(paper_lat),
                       round(bandwidth / MB, 2), paper_bw)
    result.notes.append(
        "filled into the kernel sleds table via FSLEDS_FILL at boot")
    return result


def _lat_str(latency: float) -> str:
    if latency != latency:  # NaN
        return "-"
    if latency >= 1e-3:
        return f"{latency * 1e3:.1f} ms"
    if latency >= 1e-6:
        return f"{latency * 1e6:.1f} us"
    return f"{latency * 1e9:.0f} ns"


def run_table2(config: BenchConfig) -> ExperimentResult:
    """Table 2: storage levels of the Unix-utility machine."""
    return _device_table(config, "unix", PAPER_TABLE2, "table2",
                         "Storage levels used for measuring Unix utilities")


def run_table3(config: BenchConfig) -> ExperimentResult:
    """Table 3: storage levels of the LHEASOFT machine."""
    return _device_table(config, "lheasoft", PAPER_TABLE3, "table3",
                         "Storage levels used for measuring LHEASOFT")


# ---------------------------------------------------------------------------
# Table 4: lines of code modified
# ---------------------------------------------------------------------------

def run_table4(config: BenchConfig) -> ExperimentResult:
    """Table 4: SLEDs-specific lines per ported application."""
    result = ExperimentResult(
        exp_id="table4", title="Lines of code modified",
        columns=["application", "sleds lines (ours)", "total (ours)",
                 "paper modified", "paper total"],
        paper_expectation=(
            "grep needed the most change (560 lines: buffered, sorted "
            "output); wc/find/gmc/LHEASOFT tools are small adaptations"),
    )
    for report in table4_reports():
        result.add_row(report.application, report.sleds_lines,
                       report.total_lines, report.paper_modified,
                       report.paper_total)
    result.notes.append(
        "our counts are Python reimplementations, not patches; compare "
        "orderings, not magnitudes")
    return result


# ---------------------------------------------------------------------------
# Figure 3: two linear passes under LRU
# ---------------------------------------------------------------------------

def run_fig3(config: BenchConfig) -> ExperimentResult:
    """Figure 3: cache contents during two linear passes, 5-block file,
    3-block cache — the motivating LRU pathology."""
    cache = PageCache(capacity_pages=3, policy="lru")
    file_id = 1

    def contents() -> str:
        slots = [str(p) if (file_id, p) in cache else "e"
                 for p in range(1, 6)]
        resident = [s for s in slots if s != "e"]
        resident += ["e"] * (3 - len(resident))
        return " ".join(resident)

    result = ExperimentResult(
        exp_id="fig3", title="Movement of data among storage levels "
                             "during two linear passes (LRU)",
        columns=["pass", "access block", "cache after", "fault"],
        paper_expectation=(
            "second pass gains nothing from the cache: every access "
            "faults; with SLEDs only 2 of 5 blocks would fault"),
    )
    second_pass_faults = 0
    for pass_no in (1, 2):
        for block in range(1, 6):
            hit = cache.access((file_id, block))
            if not hit:
                cache.insert((file_id, block))
                if pass_no == 2:
                    second_pass_faults += 1
            result.add_row(pass_no, block, contents(),
                           "-" if hit else "FAULT")
    # the SLEDs counterfactual: read the 3 cached blocks first
    sleds_cache = PageCache(capacity_pages=3, policy="lru")
    for block in range(1, 6):
        if not sleds_cache.access((file_id, block)):
            sleds_cache.insert((file_id, block))
    cached_first = [b for b in range(1, 6) if (file_id, b) in sleds_cache]
    uncached = [b for b in range(1, 6) if b not in cached_first]
    sleds_faults = 0
    for block in cached_first + uncached:
        if not sleds_cache.access((file_id, block)):
            sleds_cache.insert((file_id, block))
            sleds_faults += 1
    result.notes.append(
        f"second pass faults: LRU linear = {second_pass_faults}/5, "
        f"SLEDs order = {sleds_faults}/5")
    return result


# ---------------------------------------------------------------------------
# wc sweeps (Figures 7, 8, 9)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepRow:
    """One (file size, with/without) comparison."""

    paper_mb: float
    without: RunStats
    with_sleds: RunStats

    @property
    def ratio(self) -> float:
        if self.with_sleds.time.mean <= 0:
            return float("inf")
        return self.without.time.mean / self.with_sleds.time.mean


FIG7_SIZES = tuple(range(8, 129, 8))
FIG9_SIZES = tuple(range(24, 97, 8))


@lru_cache(maxsize=32)
def _wc_sweep(config: BenchConfig, mount: str,
              sizes_mb: tuple[float, ...]) -> tuple[SweepRow, ...]:
    rows = []
    for index, paper_mb in enumerate(sizes_mb):
        stats = {}
        for use_sleds in (False, True):
            workload = text_workload(config, paper_mb, mount,
                                     seed_salt=index)
            kernel = workload.kernel

            def run(k=kernel, p=workload.path, s=use_sleds):
                wc(k, p, use_sleds=s)

            stats[use_sleds] = measure_runs(kernel, run, runs=config.runs)
        rows.append(SweepRow(paper_mb=paper_mb, without=stats[False],
                             with_sleds=stats[True]))
    return tuple(rows)


def run_fig7(config: BenchConfig,
             sizes_mb: tuple[float, ...] = FIG7_SIZES) -> ExperimentResult:
    """Figure 7: wc over NFS, time vs file size, warm cache."""
    rows = _wc_sweep(config, "/mnt/nfs", sizes_mb)
    result = ExperimentResult(
        exp_id="fig7", title="wc times over NFS, with/without SLEDs, "
                             "warm cache (paper-equivalent seconds)",
        columns=["MB", "without s", "±", "with s", "±", "speedup"],
        paper_expectation=(
            "SLEDs wins above ~50 MB (cache size); constant absolute gap "
            "beyond; best ratio near 60 MB"),
    )
    for row in rows:
        result.add_row(
            row.paper_mb,
            round(config.to_paper_seconds(row.without.time.mean), 2),
            round(config.to_paper_seconds(row.without.time.ci90), 2),
            round(config.to_paper_seconds(row.with_sleds.time.mean), 2),
            round(config.to_paper_seconds(row.with_sleds.time.ci90), 2),
            round(row.ratio, 2),
        )
    result.notes.append(f"scale 1:{config.scale}; {config.runs} runs/point")
    return result


def run_fig8(config: BenchConfig,
             sizes_mb: tuple[float, ...] = FIG7_SIZES) -> ExperimentResult:
    """Figure 8: speedup ratio of Figure 7 (peaks ~4.5 near 60 MB)."""
    rows = _wc_sweep(config, "/mnt/nfs", sizes_mb)
    result = ExperimentResult(
        exp_id="fig8", title="wc time ratio (speedup) over NFS",
        columns=["MB", "speedup"],
        paper_expectation=(
            "ratio ~1 below cache size, peaking around 4.5 near 60 MB, "
            "declining gradually after"),
    )
    for row in rows:
        result.add_row(row.paper_mb, round(row.ratio, 2))
    peak = max(rows, key=lambda r: r.ratio)
    result.notes.append(
        f"peak speedup {peak.ratio:.2f}x at {peak.paper_mb} MB")
    return result


def run_fig9(config: BenchConfig,
             sizes_mb: tuple[float, ...] = FIG9_SIZES) -> ExperimentResult:
    """Figure 9: wc page faults on CD-ROM, warm cache."""
    rows = _wc_sweep(config, "/mnt/cdrom", sizes_mb)
    result = ExperimentResult(
        exp_id="fig9", title="wc page faults on CD-ROM "
                             "(paper-equivalent counts)",
        columns=["MB", "faults without", "faults with", "reduction %"],
        paper_expectation=(
            "without SLEDs faults rise sharply past the cache size; with "
            "SLEDs the increase is gradual"),
    )
    for row in rows:
        f0 = row.without.pages.mean * config.scale
        f1 = row.with_sleds.pages.mean * config.scale
        reduction = 0.0 if f0 == 0 else 100.0 * (1 - f1 / f0)
        result.add_row(row.paper_mb, round(f0), round(f1),
                       round(reduction, 1))
    result.notes.append(
        "faults = pages fetched from the device (majors + readahead), "
        "scaled to paper-equivalent counts")
    return result


# ---------------------------------------------------------------------------
# grep sweeps (Figures 10, 11, 12, 13)
# ---------------------------------------------------------------------------

FIG10_SIZES = tuple(range(24, 97, 8))
FIG11_SIZES = tuple(range(8, 129, 8))
FIG13_MB = 64
FIG13_TRIALS = 50


@lru_cache(maxsize=32)
def _grep_all_sweep(config: BenchConfig, mount: str,
                    sizes_mb: tuple[float, ...]) -> tuple[SweepRow, ...]:
    rows = []
    for index, paper_mb in enumerate(sizes_mb):
        size = config.scaled_bytes(paper_mb)
        rng = np.random.default_rng(config.seed + 31 * index)
        plants = plant_needles(config, size, count=20, rng=rng)
        stats = {}
        for use_sleds in (False, True):
            workload = text_workload(config, paper_mb, mount,
                                     plants=plants, seed_salt=index)
            kernel = workload.kernel

            def run(k=kernel, p=workload.path, s=use_sleds):
                grep(k, p, NEEDLE, use_sleds=s)

            stats[use_sleds] = measure_runs(kernel, run, runs=config.runs)
        rows.append(SweepRow(paper_mb=paper_mb, without=stats[False],
                             with_sleds=stats[True]))
    return tuple(rows)


def run_fig10(config: BenchConfig,
              sizes_mb: tuple[float, ...] = FIG10_SIZES) -> ExperimentResult:
    """Figure 10: grep (all matches) on CD-ROM, warm cache."""
    rows = _grep_all_sweep(config, "/mnt/cdrom", sizes_mb)
    result = ExperimentResult(
        exp_id="fig10", title="grep all matches on CD-ROM "
                              "(paper-equivalent seconds)",
        columns=["MB", "without s", "±", "with s", "±", "gain s"],
        paper_expectation=(
            "small CPU overhead below cache size; ~15 s constant gain for "
            "large files (the CD fill time SLEDs avoids)"),
    )
    for row in rows:
        t0 = config.to_paper_seconds(row.without.time.mean)
        t1 = config.to_paper_seconds(row.with_sleds.time.mean)
        result.add_row(row.paper_mb, round(t0, 2),
                       round(config.to_paper_seconds(row.without.time.ci90), 2),
                       round(t1, 2),
                       round(config.to_paper_seconds(row.with_sleds.time.ci90), 2),
                       round(t0 - t1, 2))
    return result


@dataclass(frozen=True)
class FirstMatchRow:
    """One size of the grep -q experiment."""

    paper_mb: float
    without: object  # Measurement
    with_sleds: object

    @property
    def ratio(self) -> float:
        if self.with_sleds.mean <= 0:
            return float("inf")
        return self.without.mean / self.with_sleds.mean


def _grep_q_trials(config: BenchConfig, mount: str, paper_mb: float,
                   use_sleds: bool, trials: int, seed_salt: int,
                   replant_each_run: bool = False) -> list[float]:
    """grep -q trials, the paper's §5.1 protocol: one test file, warm
    cache, consecutive runs in the same mode — each run finds the cache in
    the state the previous run left it.

    Figure 11 places "a single match ... randomly in the test file": the
    position is drawn once per file size (``replant_each_run=False``).
    With SLEDs, the run that finds the match leaves its page cached, so
    subsequent runs terminate "without executing any physical I/O at all"
    — the paper's ideal benchmark.  The Figure 13 CDF instead studies the
    distribution over match positions (``replant_each_run=True``):
    re-planting mutates file *content* only; cache residency is untouched,
    exactly like editing a byte in place.
    """
    machine = make_machine(config, profile="unix", seed_salt=seed_salt)
    kernel = machine.kernel
    fs = machine.filesystems[mount]
    size = config.scaled_bytes(paper_mb)
    rng = np.random.default_rng(config.seed + 7919 * seed_salt)
    inode = fs.create_text_file("bench/haystack.txt", size,
                                seed=config.seed + seed_salt)
    path = f"{mount}/bench/haystack.txt"
    inode.content.plants = {
        int(rng.integers(1, size - len(NEEDLE) - 2)): NEEDLE}
    kernel.warm_file(path)  # the discarded cache-warming run
    times = []
    for _ in range(trials):
        if replant_each_run:
            inode.content.plants = {
                int(rng.integers(1, size - len(NEEDLE) - 2)): NEEDLE}
        with kernel.process() as run:
            found = grep(kernel, path, NEEDLE, use_sleds=use_sleds,
                         first_match_only=True)
        assert found.count == 1, "planted match must be found"
        times.append(run.elapsed)
    return times


#: independent random match placements pooled per file size (a single
#: placement makes the curve hostage to one draw; the paper's own Figure 11
#: without-SLEDs line is visibly jagged for the same reason)
GREP_Q_PLACEMENTS = 3


@lru_cache(maxsize=32)
def _grep_q_sweep(config: BenchConfig, mount: str,
                  sizes_mb: tuple[float, ...]) -> tuple[FirstMatchRow, ...]:
    rows = []
    runs_per_placement = max(2, config.runs // GREP_Q_PLACEMENTS)
    for index, paper_mb in enumerate(sizes_mb):
        t0: list[float] = []
        t1: list[float] = []
        for placement in range(GREP_Q_PLACEMENTS):
            salt = 100 * index + placement
            t0 += _grep_q_trials(config, mount, paper_mb, False,
                                 runs_per_placement, seed_salt=salt)
            t1 += _grep_q_trials(config, mount, paper_mb, True,
                                 runs_per_placement, seed_salt=salt)
        rows.append(FirstMatchRow(paper_mb=paper_mb,
                                  without=summarize(t0),
                                  with_sleds=summarize(t1)))
    return tuple(rows)


def run_fig11(config: BenchConfig,
              sizes_mb: tuple[float, ...] = FIG11_SIZES) -> ExperimentResult:
    """Figure 11: grep -q (one random match) on ext2, warm cache."""
    rows = _grep_q_sweep(config, "/mnt/ext2", sizes_mb)
    result = ExperimentResult(
        exp_id="fig11", title="grep one match on ext2 "
                              "(paper-equivalent seconds)",
        columns=["MB", "without s", "±", "with s", "±"],
        paper_expectation=(
            "large error bars without SLEDs (poor cache behaviour, match "
            "position luck); with SLEDs low and stable times"),
    )
    for row in rows:
        result.add_row(
            row.paper_mb,
            round(config.to_paper_seconds(row.without.mean), 2),
            round(config.to_paper_seconds(row.without.ci90), 2),
            round(config.to_paper_seconds(row.with_sleds.mean), 2),
            round(config.to_paper_seconds(row.with_sleds.ci90), 2))
    return result


def run_fig12(config: BenchConfig,
              sizes_mb: tuple[float, ...] = FIG11_SIZES) -> ExperimentResult:
    """Figure 12: speedup ratio of Figure 11 (up to ~25x)."""
    rows = _grep_q_sweep(config, "/mnt/ext2", sizes_mb)
    result = ExperimentResult(
        exp_id="fig12", title="grep -q mean speedup, ext2",
        columns=["MB", "speedup"],
        paper_expectation="order-of-magnitude speedups above cache size",
    )
    for row in rows:
        result.add_row(row.paper_mb, round(row.ratio, 2))
    peak = max(rows, key=lambda r: r.ratio)
    result.notes.append(
        f"peak speedup {peak.ratio:.1f}x at {peak.paper_mb} MB")
    return result


def run_fig13(config: BenchConfig, paper_mb: float = FIG13_MB,
              trials: int = FIG13_TRIALS) -> ExperimentResult:
    """Figure 13: CDF of grep -q times, NFS, 64 MB file."""
    t0 = _grep_q_trials(config, "/mnt/nfs", paper_mb, False, trials, 900,
                        replant_each_run=True)
    t1 = _grep_q_trials(config, "/mnt/nfs", paper_mb, True, trials, 901,
                        replant_each_run=True)
    result = ExperimentResult(
        exp_id="fig13", title=f"CDF of grep -q times, NFS, {paper_mb} MB "
                              "(paper-equivalent seconds)",
        columns=["percentile", "without s", "with s"],
        paper_expectation=(
            "without SLEDs the CDF spreads over tens of seconds (no "
            "benefit from the mostly-cached file); with SLEDs most runs "
            "finish quickly"),
    )
    q = np.linspace(0.1, 1.0, 10)
    t0s = np.quantile(np.array(t0) * config.scale, q)
    t1s = np.quantile(np.array(t1) * config.scale, q)
    for p, a, b in zip(q, t0s, t1s):
        result.add_row(round(100 * p), round(float(a), 2),
                       round(float(b), 2))
    result.notes.append(
        f"median without {np.median(t0) * config.scale:.2f}s vs "
        f"with {np.median(t1) * config.scale:.2f}s over {trials} trials")
    return result


# ---------------------------------------------------------------------------
# LHEASOFT (Figures 14, 15)
# ---------------------------------------------------------------------------

FIG14_SIZES = tuple(range(8, 65, 8))
FIG15_SIZES = tuple(range(16, 65, 16))


@lru_cache(maxsize=32)
def _lhea_sweep(config: BenchConfig, tool: str, factor: int,
                sizes_mb: tuple[float, ...]) -> tuple[SweepRow, ...]:
    rows = []
    for index, paper_mb in enumerate(sizes_mb):
        stats = {}
        for use_sleds in (False, True):
            workload = fits_workload(config, paper_mb, seed_salt=index)
            kernel = workload.kernel
            out_path = "/mnt/ext2/bench/out.fits"

            if tool == "fimhisto":
                def run(k=kernel, p=workload.path, s=use_sleds):
                    fimhisto(k, p, out_path, use_sleds=s)
            else:
                def run(k=kernel, p=workload.path, s=use_sleds,
                        f=factor):
                    fimgbin(k, p, out_path, factor=f, use_sleds=s)

            stats[use_sleds] = measure_runs(kernel, run, runs=config.runs)
        rows.append(SweepRow(paper_mb=paper_mb, without=stats[False],
                             with_sleds=stats[True]))
    return tuple(rows)


def run_fig14(config: BenchConfig,
              sizes_mb: tuple[float, ...] = FIG14_SIZES) -> ExperimentResult:
    """Figure 14: fimhisto elapsed time, ext2, warm cache."""
    rows = _lhea_sweep(config, "fimhisto", 0, sizes_mb)
    result = ExperimentResult(
        exp_id="fig14", title="fimhisto elapsed time, ext2 "
                              "(paper-equivalent seconds)",
        columns=["MB", "without s", "±", "with s", "±",
                 "time gain %", "fault reduction %"],
        paper_expectation=(
            "15-25% time reduction and 30-50% fault reduction for files "
            "of 48-64 MB; writes (~1/4 of I/O) cap the gain"),
    )
    for row in rows:
        t0, t1 = row.without.time.mean, row.with_sleds.time.mean
        f0, f1 = row.without.pages.mean, row.with_sleds.pages.mean
        result.add_row(
            row.paper_mb,
            round(config.to_paper_seconds(t0), 2),
            round(config.to_paper_seconds(row.without.time.ci90), 2),
            round(config.to_paper_seconds(t1), 2),
            round(config.to_paper_seconds(row.with_sleds.time.ci90), 2),
            round(0.0 if t0 == 0 else 100 * (1 - t1 / t0), 1),
            round(0.0 if f0 == 0 else 100 * (1 - f1 / f0), 1))
    return result


def run_fig15(config: BenchConfig,
              sizes_mb: tuple[float, ...] = FIG15_SIZES) -> ExperimentResult:
    """Figure 15: fimgbin elapsed time, ext2, 4x and 16x reduction."""
    result = ExperimentResult(
        exp_id="fig15", title="fimgbin elapsed time, ext2 "
                              "(paper-equivalent seconds)",
        columns=["MB", "factor", "without s", "with s", "time gain %"],
        paper_expectation=(
            "~11% gain at 4x reduction for >=48 MB; 25-35% at 16x (less "
            "write traffic leaves more for SLEDs to win)"),
    )
    for factor in (4, 16):
        rows = _lhea_sweep(config, "fimgbin", factor, sizes_mb)
        for row in rows:
            t0, t1 = row.without.time.mean, row.with_sleds.time.mean
            result.add_row(
                row.paper_mb, factor,
                round(config.to_paper_seconds(t0), 2),
                round(config.to_paper_seconds(t1), 2),
                round(0.0 if t0 == 0 else 100 * (1 - t1 / t0), 1))
    return result
