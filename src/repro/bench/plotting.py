"""ASCII chart rendering for experiment results.

The paper's evaluation is figures; a terminal reproduction should be able
to *draw* them.  :func:`ascii_chart` renders one or more (x, y) series on
a character grid with axes and a legend — enough to see the crossover at
the cache size and the shape of the speedup curve without leaving the
shell.  The bench CLI exposes it as ``--chart``.
"""

from __future__ import annotations

from dataclasses import dataclass

GLYPHS = "*+x@%&o#"


@dataclass(frozen=True)
class Series:
    """One plotted line."""

    label: str
    xs: tuple[float, ...]
    ys: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.label!r}: {len(self.xs)} xs vs "
                f"{len(self.ys)} ys")
        if not self.xs:
            raise ValueError(f"series {self.label!r} is empty")


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    if hi <= lo:
        return 0
    return round((value - lo) / (hi - lo) * (steps - 1))


def ascii_chart(series: list[Series], width: int = 64, height: int = 18,
                x_label: str = "", y_label: str = "") -> str:
    """Render series on a character grid with axes and a legend."""
    if not series:
        return "(no series)"
    if width < 16 or height < 6:
        raise ValueError(f"chart too small: {width}x{height}")
    xs_all = [x for s in series for x in s.xs]
    ys_all = [y for s in series for y in s.ys]
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo, y_hi = min(ys_all), max(ys_all)
    if y_lo > 0 and y_lo < 0.3 * y_hi:
        y_lo = 0.0  # anchor at zero when the data plausibly starts there
    grid = [[" "] * width for _ in range(height)]
    for index, s in enumerate(series):
        glyph = GLYPHS[index % len(GLYPHS)]
        points = sorted(zip(s.xs, s.ys))
        cells = [(_scale(x, x_lo, x_hi, width),
                  _scale(y, y_lo, y_hi, height)) for x, y in points]
        # connect consecutive points with interpolated cells
        for (c0, r0), (c1, r1) in zip(cells, cells[1:]):
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for t in range(steps + 1):
                col = round(c0 + (c1 - c0) * t / steps)
                row = round(r0 + (r1 - r0) * t / steps)
                grid[height - 1 - row][col] = glyph
        for col, row in cells:  # data points overwrite connectors
            grid[height - 1 - row][col] = glyph
    y_ticks = {0: y_lo, height - 1: y_hi, (height - 1) // 2:
               (y_lo + y_hi) / 2}
    lines = []
    if y_label:
        lines.append(f"{y_label}")
    for row in range(height):
        tick = y_ticks.get(height - 1 - row)
        prefix = f"{tick:>9.3g} |" if tick is not None else f"{'':>9} |"
        lines.append(prefix + "".join(grid[row]))
    lines.append(f"{'':>9} +" + "-" * width)
    x_axis = f"{x_lo:<.4g}"
    x_axis = (f"{'':>11}{x_axis}"
              f"{x_hi:>{max(1, width - len(x_axis))}.4g}")
    lines.append(x_axis)
    if x_label:
        lines.append(f"{'':>11}{x_label:^{width}}")
    legend = "   ".join(f"{GLYPHS[i % len(GLYPHS)]} {s.label}"
                        for i, s in enumerate(series))
    lines.append(f"{'':>11}{legend}")
    return "\n".join(lines)


def chart_result(result, x_column: str | None = None,
                 y_columns: list[str] | None = None,
                 width: int = 64, height: int = 18) -> str:
    """Chart an :class:`~repro.bench.report.ExperimentResult`.

    Picks the first column as x and every numeric column as a series by
    default; non-numeric rows are skipped.  Returns a message instead of
    raising when the result has no chartable data (tables like Table 4).
    """
    if not result.rows:
        return "(no rows to chart)"
    columns = result.columns
    x_col = x_column or columns[0]
    x_idx = columns.index(x_col)
    candidates = y_columns or [
        c for i, c in enumerate(columns)
        if i != x_idx and all(
            isinstance(row[i], (int, float)) for row in result.rows)
    ]
    candidates = [c for c in candidates if not c.strip().startswith("±")
                  and c != x_col]
    series = []
    for name in candidates:
        y_idx = columns.index(name)
        points = [(row[x_idx], row[y_idx]) for row in result.rows
                  if isinstance(row[x_idx], (int, float))
                  and isinstance(row[y_idx], (int, float))]
        if len(points) >= 2:
            xs, ys = zip(*points)
            series.append(Series(label=name, xs=xs, ys=ys))
    if not series:
        return "(no numeric series to chart)"
    return ascii_chart(series, width=width, height=height,
                       x_label=x_col, y_label=result.title)
