"""Declarative scenario construction: machines and workloads from dicts.

A *scenario* is a JSON-friendly description of a machine and its files —
what profile to build, what to create where, what to pre-warm.  It powers
the ``sleds-run`` CLI (:mod:`repro.apps.cli`) and makes experiment setups
shareable as plain files.

Example::

    {
      "profile": "unix",
      "cache_mb": 4,
      "seed": 42,
      "noise": 0.02,
      "files": [
        {"path": "/mnt/ext2/src/main.c", "size_kb": 256, "seed": 1,
         "plants": {"4000": "XNEEDLEX"}},
        {"path": "/mnt/nfs/pub/data.txt", "size_kb": 1024}
      ],
      "tape_files": [
        {"path": "/mnt/hsm/archive.dat", "size_kb": 512,
         "cartridge": "VOL000"}
      ],
      "warm": ["/mnt/ext2/src/main.c"]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.fs.hsmfs import HsmFs
from repro.machine import Machine
from repro.sim.errors import InvalidArgumentError
from repro.sim.units import KB, MB, PAGE_SIZE

PROFILES = ("unix", "lheasoft", "hsm")


class ScenarioError(ValueError):
    """Malformed scenario description."""


def _size_of(entry: dict, what: str) -> int:
    """Resolve ``size`` / ``size_kb`` / ``size_mb`` (exactly one)."""
    keys = [k for k in ("size", "size_kb", "size_mb") if k in entry]
    if len(keys) != 1:
        raise ScenarioError(
            f"{what}: give exactly one of size/size_kb/size_mb, got {keys}")
    value = entry[keys[0]]
    if not isinstance(value, (int, float)) or value <= 0:
        raise ScenarioError(f"{what}: bad size {value!r}")
    scale = {"size": 1, "size_kb": KB, "size_mb": MB}[keys[0]]
    return max(PAGE_SIZE, int(value * scale))


def _plants_of(entry: dict, size: int, what: str) -> dict[int, bytes]:
    plants: dict[int, bytes] = {}
    for offset_text, payload in (entry.get("plants") or {}).items():
        try:
            offset = int(offset_text)
        except (TypeError, ValueError):
            raise ScenarioError(
                f"{what}: plant offset {offset_text!r} is not an int"
            ) from None
        blob = payload.encode() if isinstance(payload, str) else bytes(payload)
        if offset < 0 or offset + len(blob) > size:
            raise ScenarioError(
                f"{what}: plant at {offset} escapes the {size}-byte file")
        plants[offset] = blob
    return plants


def _split_mount_rel(machine: Machine, path: str, what: str):
    for mount, fs in sorted(machine.filesystems.items(),
                            key=lambda kv: -len(kv[0])):
        if path.startswith(mount.rstrip("/") + "/"):
            return fs, path[len(mount.rstrip("/")) + 1:]
    raise ScenarioError(f"{what}: {path!r} is not under any mount "
                        f"({sorted(machine.filesystems)})")


def build_scenario(spec: dict) -> Machine:
    """Construct and boot a machine from a scenario dict."""
    if not isinstance(spec, dict):
        raise ScenarioError(f"scenario must be a dict, got {type(spec)}")
    profile = spec.get("profile", "unix")
    if profile not in PROFILES:
        raise ScenarioError(
            f"unknown profile {profile!r}; choose from {PROFILES}")
    cache_mb = spec.get("cache_mb", 4)
    if not isinstance(cache_mb, (int, float)) or cache_mb <= 0:
        raise ScenarioError(f"bad cache_mb: {cache_mb!r}")
    kwargs = dict(cache_pages=max(16, int(cache_mb * MB) // PAGE_SIZE),
                  seed=int(spec.get("seed", 20000101)),
                  noise=float(spec.get("noise", 0.0)),
                  policy=spec.get("policy", "lru"))
    if profile == "unix":
        machine = Machine.unix_utilities(**kwargs)
    elif profile == "lheasoft":
        machine = Machine.lheasoft(**kwargs)
    else:
        machine = Machine.hsm(**kwargs)
    machine.boot()

    for index, entry in enumerate(spec.get("files", [])):
        what = f"files[{index}]"
        path = entry.get("path")
        if not path:
            raise ScenarioError(f"{what}: missing path")
        fs, rel = _split_mount_rel(machine, path, what)
        size = _size_of(entry, what)
        fs.create_text_file(rel, size, seed=int(entry.get("seed", index)),
                            plants=_plants_of(entry, size, what))

    for index, entry in enumerate(spec.get("tape_files", [])):
        what = f"tape_files[{index}]"
        path = entry.get("path")
        if not path:
            raise ScenarioError(f"{what}: missing path")
        fs, rel = _split_mount_rel(machine, path, what)
        if not isinstance(fs, HsmFs):
            raise ScenarioError(
                f"{what}: {path!r} is not on an HSM mount")
        size = _size_of(entry, what)
        cartridge = entry.get("cartridge", "VOL000")
        inode = fs.create_tape_file(rel, size, cartridge)
        from repro.fs.content import SyntheticText
        inode.content = SyntheticText(
            seed=int(entry.get("seed", index)), size=size,
            plants=_plants_of(entry, size, what))

    for path in spec.get("warm", []):
        machine.kernel.warm_file(path)
    return machine


def load_scenario(path: str | Path) -> Machine:
    """Build a machine from a scenario JSON file."""
    text = Path(path).read_text()
    try:
        spec = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{path}: invalid JSON: {exc}") from exc
    return build_scenario(spec)


#: a ready-to-use default used by the CLI when no --scenario is given
DEFAULT_SCENARIO = {
    "profile": "unix",
    "cache_mb": 4,
    "seed": 42,
    "files": [
        {"path": "/mnt/ext2/demo/big.txt", "size_mb": 8, "seed": 7,
         "plants": {"6291456": "XNEEDLEX"}},
        {"path": "/mnt/ext2/demo/small.txt", "size_kb": 64, "seed": 8},
        {"path": "/mnt/nfs/pub/dataset.txt", "size_mb": 2, "seed": 9},
    ],
    "warm": ["/mnt/ext2/demo/big.txt"],
}
