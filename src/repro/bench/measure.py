"""Run-repetition and confidence-interval machinery.

The paper: "All runs were done twelve times (representing a couple of
days' execution time in total) and 90% confidence intervals calculated.
The graphs show the mean and confidence intervals."  Also: "The first run
to warm the cache was discarded from the result.  The runs were done
repeatedly in the same mode, so that, for example, the second run of grep
without SLEDs found the file system buffer cache in the state that the
first run had left it."

:func:`measure_runs` implements exactly that protocol against a simulated
kernel — with the pleasant difference that twelve virtual runs take
milliseconds of wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats as sstats

DEFAULT_RUNS = 12
CONFIDENCE = 0.90


@dataclass(frozen=True)
class Measurement:
    """Mean and symmetric 90% confidence half-width over repeated runs."""

    mean: float
    ci90: float
    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{self.mean:.4g} ± {self.ci90:.2g}"


def summarize(values: list[float] | np.ndarray,
              confidence: float = CONFIDENCE) -> Measurement:
    """Mean and t-distribution confidence half-width of a sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    mean = float(arr.mean())
    if arr.size == 1 or float(arr.std(ddof=1)) == 0.0:
        return Measurement(mean=mean, ci90=0.0, values=tuple(arr))
    sem = float(arr.std(ddof=1)) / np.sqrt(arr.size)
    tcrit = float(sstats.t.ppf(0.5 + confidence / 2, df=arr.size - 1))
    return Measurement(mean=mean, ci90=tcrit * sem, values=tuple(arr))


@dataclass(frozen=True)
class RunStats:
    """Aggregated time and fault statistics for one configuration.

    ``faults`` counts faulting pages (the page whose access triggered
    device I/O); ``pages`` counts every page fetched from the device,
    including readahead — the closest analogue of what ``time(1)``'s
    fault counter reported in the paper's setup.
    """

    time: Measurement
    faults: Measurement
    pages: Measurement


def measure_runs(kernel, run_fn: Callable[[], object],
                 runs: int = DEFAULT_RUNS, warm_runs: int = 1) -> RunStats:
    """Execute ``run_fn`` ``warm_runs + runs`` times, measuring the last
    ``runs``; cache state carries across runs as in the paper."""
    if runs <= 0 or warm_runs < 0:
        raise ValueError(f"bad run counts: warm={warm_runs}, runs={runs}")
    for _ in range(warm_runs):
        run_fn()
    times: list[float] = []
    faults: list[float] = []
    pages: list[float] = []
    for _ in range(runs):
        with kernel.process() as run:
            run_fn()
        times.append(run.elapsed)
        faults.append(float(run.hard_faults))
        pages.append(float(run.counters.pages_read))
    return RunStats(time=summarize(times), faults=summarize(faults),
                    pages=summarize(pages))
