"""Benchmark harness: lmbench characterisation, workloads, measurement,
and one experiment spec per table/figure of the paper."""

from repro.bench.lmbench import boot_fill, characterize, characterize_levels

__all__ = ["boot_fill", "characterize", "characterize_levels"]
