"""Pre-wired simulated machines matching the paper's two testbeds.

A :class:`Machine` bundles a kernel with mounted filesystems and knows how
to "boot": run the lmbench-style device characterisation and install the
results in the kernel sleds table via ``FSLEDS_FILL`` — the equivalent of
the paper's ``/etc/rc.d/init.d`` script.

Profiles:

* :meth:`Machine.unix_utilities` — the Table 2 box: 64 MB RAM
  (175 ns / 48 MB/s), a 9 MB/s disk with 18 ms access, a 2.8 MB/s CD-ROM
  at 130 ms, and a 1.0 MB/s NFS mount at 270 ms.  Mounts: ``/mnt/ext2``,
  ``/mnt/cdrom``, ``/mnt/nfs``, with a small root filesystem at ``/``.
* :meth:`Machine.lheasoft` — the Table 3 box: 210 ns / 87 MB/s memory and
  a 7 MB/s disk at 16.5 ms.
* :meth:`Machine.hsm` — the future-work platform: an HSM mount whose files
  live in a tape library with a disk staging cache (extension experiments).

The ``cache_pages`` argument sets the file-cache capacity.  The paper's
64 MB machine kept roughly two thirds of RAM available for file pages
("roughly three times" 42 MB ≈ the 128 MB upper bound); benchmarks usually
pass a scaled-down cache and scale file sizes to match (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.autochanger import Autochanger
from repro.devices.cdrom import CdromDevice
from repro.devices.disk import DiskDevice, Zone
from repro.devices.memory import MemoryDevice
from repro.devices.network import NfsDevice
from repro.devices.tape import TapeCartridge, TapeDevice
from repro.fs.filesystem import Ext2Like, FileSystem, Iso9660Like
from repro.fs.hsmfs import HsmFs
from repro.fs.nfs import NfsLike
from repro.kernel.kernel import Kernel
from repro.sim.rng import RngStreams
from repro.sim.units import GB, MB, MSEC, NSEC

#: pages in the paper's ~42 MB usable file cache (full-scale experiments)
FULL_SCALE_CACHE_PAGES = (42 * MB) // (4 * 1024)


@dataclass(frozen=True)
class MachineConfig:
    """Core implementation + multi-tenant knobs.

    The first group is semantics-preserving backends: every combination
    produces bit-identical virtual-time results (property-tested in
    ``tests/test_core_fastpath_identity.py``); the knobs trade host
    speed and memory, nothing observable inside the simulation.

    * ``residency`` — the page cache's per-inode index:
      ``"runs"`` (sorted interval runs, the default), ``"bitmap"``
      (numpy boolean arrays, fastest for dense random churn), or
      ``"sets"`` (the pre-PR-7 per-page sets, kept as the reference).
    * ``event_loop`` — ``"bucket"`` (calendar queue, the default) or
      ``"heap"`` (the pre-PR-7 binary heap reference).

    The second group configures the multi-tenant kernel.  At the
    defaults (one shard, no limits, fair elevator off) the machine is
    bit-identical to the single-tenant seed — property-tested in
    ``tests/test_multitenant_identity.py``:

    * ``shards`` — page-cache shard count (1 = the unsharded seed
      structure);
    * ``tenant_limits`` — ``{tenant: TenantMemoryLimit}`` soft/hard
      working-set caps (None = unlimited);
    * ``fair_elevator`` — replace the default C-LOOK elevator with the
      budget-based fair scheduler (``"fair"``: per-tenant DRR byte
      budgets over a C-LOOK position policy).
    """

    residency: str = "runs"
    event_loop: str = "bucket"
    shards: int = 1
    tenant_limits: dict | None = None
    fair_elevator: bool = False


#: the default knobs (interval runs + calendar queue)
DEFAULT_CONFIG = MachineConfig()


@dataclass
class Machine:
    """A kernel plus its mounted filesystems."""

    kernel: Kernel
    filesystems: dict[str, FileSystem] = field(default_factory=dict)
    booted: bool = False

    def mount(self, path: str, fs: FileSystem) -> None:
        self.kernel.mount(path, fs)
        self.filesystems[path] = fs

    def fs(self, path: str) -> FileSystem:
        return self.filesystems[path]

    def boot(self) -> dict[str, tuple[float, float]]:
        """Characterise every mounted level and fill the sleds table.

        Returns the installed ``{device_key: (latency, bandwidth)}`` map
        (the FSLEDS_FILL payload), so callers can print Table 2/3.
        """
        from repro.bench.lmbench import boot_fill
        entries = boot_fill(self.kernel)
        self.booted = True
        return entries

    # -- profile constructors -----------------------------------------------

    @classmethod
    def unix_utilities(cls, cache_pages: int = FULL_SCALE_CACHE_PAGES,
                       seed: int = 20000101, noise: float = 0.0,
                       policy: str = "lru",
                       readahead_min_pages: int = 4,
                       readahead_max_pages: int = 16,
                       config: MachineConfig | None = None) -> "Machine":
        """The paper's Unix-utility testbed (Table 2)."""
        config = config or DEFAULT_CONFIG
        rng = RngStreams(seed)
        memory = MemoryDevice(latency=175 * NSEC, bandwidth=48 * MB)
        kernel = Kernel(cache_pages=cache_pages, policy=policy,
                        memory=memory, rng=rng, noise=noise,
                        readahead_min_pages=readahead_min_pages,
                        readahead_max_pages=readahead_max_pages,
                        residency=config.residency,
                        event_loop=config.event_loop,
                        io_scheduler="fair" if config.fair_elevator
                        else "clook",
                        cache_shards=config.shards,
                        tenant_limits=config.tenant_limits)
        machine = cls(kernel=kernel)
        root = Ext2Like(
            DiskDevice(name="root-disk", capacity=2 * GB,
                       rng=rng.stream("root-disk")),
            name="rootfs")
        machine.mount("/", root)
        machine.mount("/mnt/ext2", Ext2Like(
            DiskDevice(name="ext2-disk", rng=rng.stream("ext2-disk")),
            name="ext2"))
        machine.mount("/mnt/cdrom", Iso9660Like(
            CdromDevice(name="cdrom-drive", rng=rng.stream("cdrom")),
            name="iso9660"))
        machine.mount("/mnt/nfs", NfsLike(
            NfsDevice(name="nfs-server", rng=rng.stream("nfs")),
            name="nfs"))
        return machine

    @classmethod
    def lheasoft(cls, cache_pages: int = FULL_SCALE_CACHE_PAGES,
                 seed: int = 20000102, noise: float = 0.0,
                 policy: str = "lru",
                 readahead_min_pages: int = 4,
                 readahead_max_pages: int = 16,
                 config: MachineConfig | None = None) -> "Machine":
        """The paper's LHEASOFT testbed (Table 3)."""
        config = config or DEFAULT_CONFIG
        rng = RngStreams(seed)
        memory = MemoryDevice(latency=210 * NSEC, bandwidth=87 * MB)
        kernel = Kernel(cache_pages=cache_pages, policy=policy,
                        memory=memory, rng=rng, noise=noise,
                        readahead_min_pages=readahead_min_pages,
                        readahead_max_pages=readahead_max_pages,
                        residency=config.residency,
                        event_loop=config.event_loop,
                        io_scheduler="fair" if config.fair_elevator
                        else "clook",
                        cache_shards=config.shards,
                        tenant_limits=config.tenant_limits)
        machine = cls(kernel=kernel)
        disk = DiskDevice(
            name="lhea-disk",
            min_seek=2.0 * MSEC, max_seek=19.0 * MSEC,
            zones=(Zone(0.00, 8.6 * MB), Zone(0.40, 7.0 * MB),
                   Zone(0.75, 5.2 * MB)),
            rng=rng.stream("lhea-disk"))
        root = Ext2Like(
            DiskDevice(name="root-disk", capacity=2 * GB,
                       rng=rng.stream("root-disk")),
            name="rootfs")
        machine.mount("/", root)
        machine.mount("/mnt/ext2", Ext2Like(disk, name="ext2"))
        return machine

    @classmethod
    def hsm(cls, cache_pages: int = FULL_SCALE_CACHE_PAGES,
            stage_pages: int = 8192, drives: int = 2, cartridges: int = 8,
            seed: int = 20000103, noise: float = 0.0,
            policy: str = "lru",
            readahead_min_pages: int = 4,
            readahead_max_pages: int = 16,
            config: MachineConfig | None = None) -> "Machine":
        """An HSM machine: tape library + disk staging cache + local disk."""
        config = config or DEFAULT_CONFIG
        rng = RngStreams(seed)
        memory = MemoryDevice(latency=175 * NSEC, bandwidth=48 * MB)
        kernel = Kernel(cache_pages=cache_pages, policy=policy,
                        memory=memory, rng=rng, noise=noise,
                        readahead_min_pages=readahead_min_pages,
                        readahead_max_pages=readahead_max_pages,
                        residency=config.residency,
                        event_loop=config.event_loop,
                        io_scheduler="fair" if config.fair_elevator
                        else "clook",
                        cache_shards=config.shards,
                        tenant_limits=config.tenant_limits)
        machine = cls(kernel=kernel)
        root = Ext2Like(
            DiskDevice(name="root-disk", capacity=2 * GB,
                       rng=rng.stream("root-disk")),
            name="rootfs")
        machine.mount("/", root)
        machine.mount("/mnt/ext2", Ext2Like(
            DiskDevice(name="ext2-disk", rng=rng.stream("ext2-disk")),
            name="ext2"))
        tape_drives = [
            TapeDevice(name=f"tape{i}", rng=rng.stream(f"tape{i}"))
            for i in range(drives)
        ]
        carts = [TapeCartridge(label=f"VOL{i:03d}") for i in range(cartridges)]
        changer = Autochanger(tape_drives, carts,
                              rng=rng.stream("autochanger"))
        hsm_fs = HsmFs(
            autochanger=changer,
            stage_device=DiskDevice(name="hsm-stage-disk",
                                    rng=rng.stream("hsm-stage")),
            stage_pages=stage_pages)
        machine.mount("/mnt/hsm", hsm_fs)
        return machine

    # -- convenient accessors ---------------------------------------------------

    @property
    def ext2(self) -> FileSystem:
        return self.filesystems["/mnt/ext2"]

    @property
    def cdrom(self) -> FileSystem:
        return self.filesystems["/mnt/cdrom"]

    @property
    def nfs(self) -> FileSystem:
        return self.filesystems["/mnt/nfs"]

    @property
    def hsmfs(self) -> HsmFs:
        fs = self.filesystems["/mnt/hsm"]
        assert isinstance(fs, HsmFs)
        return fs
