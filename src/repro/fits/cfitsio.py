"""cfitsio-like I/O layer: FITS files over the simulated syscall interface.

LHEASOFT links against NASA's cfitsio; the paper modified that library
("cfitsio 190 lines modified, shared, used in both fimhisto and fimgbin").
This module is our equivalent seam: it knows how to create FITS files
through the kernel, parse headers, locate the data unit, and read element
ranges — and it is where the ``ff``-prefixed SLEDs calls plug in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fits.format import (
    BITPIX_DTYPES,
    BLOCK_SIZE,
    BinTableHDU,
    FitsFormatError,
    FitsHeader,
    ImageHDU,
    image_params,
    padded,
)

_WRITE_CHUNK = 256 * 1024


@dataclass
class FitsImageInfo:
    """Where the primary image lives inside an open FITS file."""

    path: str
    header: FitsHeader
    bitpix: int
    shape: list[int]          # fastest axis first (FITS convention)
    data_offset: int          # byte offset of the data unit
    element_size: int
    element_count: int
    bscale: float = 1.0       # physical = raw * BSCALE + BZERO
    bzero: float = 0.0

    @property
    def dtype(self) -> np.dtype:
        return BITPIX_DTYPES[self.bitpix]

    @property
    def data_bytes(self) -> int:
        return self.element_count * self.element_size

    @property
    def scaled(self) -> bool:
        """Whether reads require a physical-value conversion — the
        "data format conversion" the paper's fimhisto pass 2 performs."""
        return self.bscale != 1.0 or self.bzero != 0.0


def write_fits(kernel, path: str, hdus: list) -> None:
    """Serialise HDUs and write them through the syscall layer."""
    fd = kernel.open(path, "w")
    try:
        for hdu in hdus:
            blob = hdu.to_bytes()
            for pos in range(0, len(blob), _WRITE_CHUNK):
                kernel.write(fd, blob[pos:pos + _WRITE_CHUNK])
    finally:
        kernel.close(fd)


def create_image(kernel, path: str, data: np.ndarray,
                 extra_cards: FitsHeader | None = None,
                 bscale: float = 1.0, bzero: float = 0.0) -> None:
    """Create a FITS file whose primary HDU is ``data``.

    ``data`` holds the *raw* stored values; non-default ``bscale``/
    ``bzero`` declare the physical-value transform readers must apply.
    """
    header = extra_cards or FitsHeader()
    if bscale != 1.0:
        header.set("BSCALE", bscale, "physical = raw * BSCALE + BZERO")
    if bzero != 0.0:
        header.set("BZERO", bzero)
    hdu = ImageHDU(data=data, header=header)
    write_fits(kernel, path, [hdu])


def read_primary_header(kernel, fd: int) -> tuple[FitsHeader, int]:
    """Parse the primary header of an open file; returns (header, size)."""
    raw = b""
    while True:
        block = kernel.pread(fd, len(raw), BLOCK_SIZE)
        if len(block) < BLOCK_SIZE:
            raise FitsFormatError("truncated FITS header")
        raw += block
        try:
            return FitsHeader.from_bytes(raw)
        except FitsFormatError as exc:
            if "no END" not in str(exc):
                raise
            if len(raw) > 640 * BLOCK_SIZE:
                raise FitsFormatError("header unreasonably large") from exc


def open_image(kernel, fd: int, path: str = "?") -> FitsImageInfo:
    """Parse the primary HDU metadata of an open FITS image."""
    header, consumed = read_primary_header(kernel, fd)
    if header.get("SIMPLE") is not True:
        raise FitsFormatError(f"{path}: not a simple FITS file")
    bitpix, shape, _ = image_params(header)
    if bitpix not in BITPIX_DTYPES:
        raise FitsFormatError(f"{path}: unsupported BITPIX {bitpix}")
    element_size = abs(bitpix) // 8
    element_count = 1
    for n in shape:
        element_count *= n
    return FitsImageInfo(
        path=path, header=header, bitpix=bitpix, shape=shape,
        data_offset=consumed, element_size=element_size,
        element_count=element_count,
        bscale=float(header.get("BSCALE", 1.0)),
        bzero=float(header.get("BZERO", 0.0)))


def read_elements(kernel, fd: int, info: FitsImageInfo,
                  first: int, count: int,
                  apply_scaling: bool = True) -> np.ndarray:
    """Read ``count`` elements starting at element ``first`` (native order
    numpy array, converted from FITS big-endian).

    When the header declares ``BSCALE``/``BZERO`` and ``apply_scaling`` is
    set, values are converted to physical floats — cfitsio's behaviour,
    and the paper's fimhisto "data format conversion".
    """
    if first < 0 or first + count > info.element_count:
        raise FitsFormatError(
            f"element range [{first}, {first + count}) outside image "
            f"of {info.element_count} elements")
    offset = info.data_offset + first * info.element_size
    blob = kernel.pread(fd, offset, count * info.element_size)
    raw = np.frombuffer(blob, dtype=info.dtype).astype(
        info.dtype.newbyteorder("="))
    if apply_scaling and info.scaled:
        return raw.astype(np.float64) * info.bscale + info.bzero
    return raw


def append_bintable(kernel, path: str, table: BinTableHDU) -> None:
    """Append a binary-table extension HDU to an existing FITS file."""
    fd = kernel.open(path, "a")
    try:
        blob = table.to_bytes()
        for pos in range(0, len(blob), _WRITE_CHUNK):
            kernel.write(fd, blob[pos:pos + _WRITE_CHUNK])
    finally:
        kernel.close(fd)


def read_bintable(kernel, path: str, hdu_index: int = 1) -> BinTableHDU:
    """Read the ``hdu_index``-th HDU (0 = primary) as a binary table."""
    fd = kernel.open(path)
    try:
        offset = 0
        for index in range(hdu_index + 1):
            raw = b""
            while True:
                block = kernel.pread(fd, offset + len(raw), BLOCK_SIZE)
                if len(block) < BLOCK_SIZE:
                    raise FitsFormatError(
                        f"{path}: ran out of data at HDU {index}")
                raw += block
                try:
                    header, consumed = FitsHeader.from_bytes(raw)
                    break
                except FitsFormatError as exc:
                    if "no END" not in str(exc):
                        raise
            _, _, data_len = _hdu_data_length(header)
            if index == hdu_index:
                payload = kernel.pread(fd, offset + consumed, data_len)
                return BinTableHDU.parse(header, payload)
            offset += consumed + padded(data_len)
    finally:
        kernel.close(fd)
    raise FitsFormatError(f"{path}: no HDU {hdu_index}")


def _hdu_data_length(header: FitsHeader) -> tuple[int, list[int], int]:
    bitpix = int(header["BITPIX"])
    naxis = int(header.get("NAXIS", 0))
    axes = [int(header[f"NAXIS{i + 1}"]) for i in range(naxis)]
    nelements = 1
    for n in axes:
        nelements *= n
    if naxis == 0:
        nelements = 0
    pcount = int(header.get("PCOUNT", 0))
    gcount = int(header.get("GCOUNT", 1))
    nbytes = (abs(bitpix) // 8) * gcount * (pcount + nelements)
    return bitpix, axes, nbytes
