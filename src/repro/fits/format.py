"""FITS (Flexible Image Transport System) format, the subset LHEASOFT uses.

"The FITS format includes image metadata, as well as the data itself."
A FITS file is a sequence of HDUs (header-data units).  Each header is a
sequence of 80-character ASCII *cards* packed into 2880-byte blocks and
terminated by an ``END`` card; the data unit follows, also padded to a
2880-byte boundary, with numeric data stored big-endian.

Implemented here:

* card formatting/parsing (logical, integer, float, string values);
* primary image HDUs (``SIMPLE``/``BITPIX``/``NAXIS``/``NAXISn``);
* a simplified binary-table extension HDU (``XTENSION = 'BINTABLE'``)
  sufficient to hold the histogram column ``fimhisto`` appends.

This is a real, round-trippable encoder/decoder operating on bytes — the
simulated kernel stores exactly these bytes, so a FITS file written
through the syscall layer can be re-opened and parsed back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

BLOCK_SIZE = 2880
CARD_SIZE = 80
CARDS_PER_BLOCK = BLOCK_SIZE // CARD_SIZE

#: BITPIX -> numpy big-endian dtype
BITPIX_DTYPES = {
    8: np.dtype(">u1"),
    16: np.dtype(">i2"),
    32: np.dtype(">i4"),
    -32: np.dtype(">f4"),
    -64: np.dtype(">f8"),
}


class FitsFormatError(ValueError):
    """Malformed FITS structure."""


@dataclass(frozen=True)
class Card:
    """One 80-character header card."""

    keyword: str
    value: object = None
    comment: str = ""

    def to_bytes(self) -> bytes:
        kw = self.keyword.upper()
        if len(kw) > 8:
            raise FitsFormatError(f"keyword too long: {kw!r}")
        if kw in ("END", "COMMENT", "HISTORY", ""):
            text = f"{kw:<8}{str(self.value or ''):<72}"
            return text[:CARD_SIZE].encode("ascii")
        body = _format_value(self.value)
        text = f"{kw:<8}= {body}"
        if self.comment:
            text += f" / {self.comment}"
        if len(text) > CARD_SIZE:
            text = text[:CARD_SIZE]
        return f"{text:<{CARD_SIZE}}".encode("ascii")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Card":
        if len(raw) != CARD_SIZE:
            raise FitsFormatError(f"card must be 80 bytes, got {len(raw)}")
        text = raw.decode("ascii")
        keyword = text[:8].strip()
        if keyword in ("END", "COMMENT", "HISTORY", ""):
            return cls(keyword=keyword, value=text[8:].rstrip())
        if text[8:10] != "= ":
            return cls(keyword=keyword, value=text[8:].rstrip())
        body = text[10:]
        comment = ""
        if body.lstrip().startswith("'"):
            # string value: find the closing quote ('' escapes a quote)
            value, rest = _parse_string(body)
            if "/" in rest:
                comment = rest.split("/", 1)[1].strip()
            return cls(keyword=keyword, value=value, comment=comment)
        if "/" in body:
            body, comment = body.split("/", 1)
            comment = comment.strip()
        return cls(keyword=keyword, value=_parse_value(body.strip()),
                   comment=comment)


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return f"{'T' if value else 'F':>20}"
    if isinstance(value, (int, np.integer)):
        return f"{int(value):>20}"
    if isinstance(value, (float, np.floating)):
        return f"{float(value):>20.10G}"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped:<8}'"
    if value is None:
        return " " * 20
    raise FitsFormatError(f"unsupported card value type: {type(value)}")


def _parse_value(text: str):
    if not text:
        return None
    if text == "T":
        return True
    if text == "F":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _parse_string(body: str) -> tuple[str, str]:
    stripped = body.lstrip()
    assert stripped.startswith("'")
    out = []
    i = 1
    while i < len(stripped):
        ch = stripped[i]
        if ch == "'":
            if i + 1 < len(stripped) and stripped[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out).rstrip(), stripped[i + 1:]
        out.append(ch)
        i += 1
    raise FitsFormatError(f"unterminated string in card body: {body!r}")


@dataclass
class FitsHeader:
    """An ordered list of cards with dict-style access by keyword."""

    cards: list[Card] = field(default_factory=list)

    def get(self, keyword: str, default=None):
        for card in self.cards:
            if card.keyword == keyword.upper():
                return card.value
        return default

    def __getitem__(self, keyword: str):
        value = self.get(keyword, default=_MISSING)
        if value is _MISSING:
            raise KeyError(keyword)
        return value

    def __contains__(self, keyword: str) -> bool:
        return self.get(keyword, default=_MISSING) is not _MISSING

    def set(self, keyword: str, value, comment: str = "") -> None:
        new = Card(keyword.upper(), value, comment)
        for i, card in enumerate(self.cards):
            if card.keyword == new.keyword:
                self.cards[i] = new
                return
        self.cards.append(new)

    def to_bytes(self) -> bytes:
        raw = b"".join(card.to_bytes() for card in self.cards)
        raw += Card("END").to_bytes()
        pad = (-len(raw)) % BLOCK_SIZE
        return raw + b" " * pad

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["FitsHeader", int]:
        """Parse a header; returns (header, bytes consumed incl. padding)."""
        cards: list[Card] = []
        pos = 0
        while True:
            if pos + CARD_SIZE > len(raw):
                raise FitsFormatError("header runs past end of data (no END)")
            card = Card.from_bytes(raw[pos:pos + CARD_SIZE])
            pos += CARD_SIZE
            if card.keyword == "END":
                break
            if card.keyword == "" and not str(card.value).strip():
                continue  # blank card
            cards.append(card)
        consumed = ((pos + BLOCK_SIZE - 1) // BLOCK_SIZE) * BLOCK_SIZE
        return cls(cards=cards), consumed


_MISSING = object()


@dataclass
class ImageHDU:
    """A primary or image-extension HDU."""

    data: np.ndarray
    header: FitsHeader = field(default_factory=FitsHeader)
    primary: bool = True

    def __post_init__(self) -> None:
        bitpix = _bitpix_of(self.data.dtype)
        axes = list(reversed(self.data.shape))  # FITS axes are fastest-first
        cards = [Card("SIMPLE", True, "conforms to FITS standard")
                 if self.primary else
                 Card("XTENSION", "IMAGE", "image extension")]
        cards += [
            Card("BITPIX", bitpix, "bits per pixel"),
            Card("NAXIS", len(axes), "number of axes"),
        ]
        cards += [Card(f"NAXIS{i + 1}", n) for i, n in enumerate(axes)]
        if self.primary:
            cards.append(Card("EXTEND", True))
        merged = FitsHeader(cards)
        for card in self.header.cards:
            if card.keyword not in merged:
                merged.cards.append(card)
        self.header = merged

    def to_bytes(self) -> bytes:
        dtype = BITPIX_DTYPES[_bitpix_of(self.data.dtype)]
        payload = np.ascontiguousarray(self.data, dtype=dtype).tobytes()
        pad = (-len(payload)) % BLOCK_SIZE
        return self.header.to_bytes() + payload + b"\0" * pad


def _bitpix_of(dtype: np.dtype) -> int:
    for bitpix, candidate in BITPIX_DTYPES.items():
        if candidate == dtype.newbyteorder(">"):
            return bitpix
    raise FitsFormatError(f"dtype {dtype} has no FITS BITPIX")


@dataclass
class BinTableHDU:
    """Simplified BINTABLE: named numeric columns of equal length."""

    columns: dict[str, np.ndarray]
    header: FitsHeader = field(default_factory=FitsHeader)

    _TFORM = {
        np.dtype(">i2"): "1I",
        np.dtype(">i4"): "1J",
        np.dtype(">f4"): "1E",
        np.dtype(">f8"): "1D",
    }

    def __post_init__(self) -> None:
        if not self.columns:
            raise FitsFormatError("binary table needs at least one column")
        lengths = {len(col) for col in self.columns.values()}
        if len(lengths) != 1:
            raise FitsFormatError(
                f"all columns must have equal length, got {lengths}")

    def _row_layout(self) -> list[tuple[str, np.dtype]]:
        return [(name, np.asarray(col).dtype.newbyteorder(">"))
                for name, col in self.columns.items()]

    def to_bytes(self) -> bytes:
        layout = self._row_layout()
        nrows = len(next(iter(self.columns.values())))
        row_bytes = sum(dtype.itemsize for _, dtype in layout)
        cards = [
            Card("XTENSION", "BINTABLE", "binary table extension"),
            Card("BITPIX", 8),
            Card("NAXIS", 2),
            Card("NAXIS1", row_bytes, "bytes per row"),
            Card("NAXIS2", nrows, "number of rows"),
            Card("PCOUNT", 0),
            Card("GCOUNT", 1),
            Card("TFIELDS", len(layout)),
        ]
        for i, (name, dtype) in enumerate(layout, start=1):
            cards.append(Card(f"TTYPE{i}", name))
            cards.append(Card(f"TFORM{i}", self._TFORM[dtype]))
        header = FitsHeader(cards)
        for card in self.header.cards:
            if card.keyword not in header:
                header.cards.append(card)
        rows = np.empty(
            nrows,
            dtype=[(name, dtype.str) for name, dtype in layout])
        for name, col in self.columns.items():
            rows[name] = col
        payload = rows.tobytes()
        pad = (-len(payload)) % BLOCK_SIZE
        return header.to_bytes() + payload + b"\0" * pad

    @classmethod
    def parse(cls, header: FitsHeader, payload: bytes) -> "BinTableHDU":
        nfields = int(header["TFIELDS"])
        nrows = int(header["NAXIS2"])
        inverse_tform = {v: k for k, v in cls._TFORM.items()}
        layout = []
        for i in range(1, nfields + 1):
            name = str(header[f"TTYPE{i}"])
            tform = str(header[f"TFORM{i}"])
            try:
                dtype = inverse_tform[tform]
            except KeyError:
                raise FitsFormatError(
                    f"unsupported TFORM {tform!r}") from None
            layout.append((name, dtype))
        rows = np.frombuffer(
            payload[: nrows * sum(d.itemsize for _, d in layout)],
            dtype=[(name, dtype.str) for name, dtype in layout])
        columns = {name: rows[name].copy() for name, _ in layout}
        return cls(columns=columns, header=header)


def image_params(header: FitsHeader) -> tuple[int, list[int], int]:
    """(bitpix, shape fastest-axis-first, data byte length w/o padding)."""
    bitpix = int(header["BITPIX"])
    naxis = int(header["NAXIS"])
    axes = [int(header[f"NAXIS{i + 1}"]) for i in range(naxis)]
    nelements = 1
    for n in axes:
        nelements *= n
    nbytes = nelements * abs(bitpix) // 8
    return bitpix, axes, nbytes


def padded(nbytes: int) -> int:
    """Data-unit length including block padding."""
    return ((nbytes + BLOCK_SIZE - 1) // BLOCK_SIZE) * BLOCK_SIZE
