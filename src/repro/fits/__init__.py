"""FITS format substrate and the cfitsio-like I/O seam."""

from repro.fits.cfitsio import (
    FitsImageInfo,
    append_bintable,
    create_image,
    open_image,
    read_bintable,
    read_elements,
    write_fits,
)
from repro.fits.format import (
    BLOCK_SIZE,
    BinTableHDU,
    Card,
    FitsFormatError,
    FitsHeader,
    ImageHDU,
    image_params,
    padded,
)

__all__ = [
    "Card",
    "FitsHeader",
    "ImageHDU",
    "BinTableHDU",
    "FitsFormatError",
    "BLOCK_SIZE",
    "image_params",
    "padded",
    "FitsImageInfo",
    "create_image",
    "open_image",
    "read_elements",
    "write_fits",
    "append_bintable",
    "read_bintable",
]
