#!/usr/bin/env python3
"""The paper's motivating anecdote: re-grepping a source tree.

"Programmers may do find -exec grep ... while looking for a particular
routine.  If the routine is near the end of the set of files as normally
scanned ... the entry may be cached but earlier files may already have
been flushed.  Repeating the operation, then, causes a complete rescan ...
The SLEDs-aware find allows [the user] to search cache first, then higher
latency data only as needed."

This demo builds a small "kernel source tree", simulates the interrupted
first search, and compares the naive rescan with the SLEDs-aware
cached-first composition.

Run:  python examples/grep_cached_first.py
"""

from repro import Machine
from repro.apps.findutil import find_exec_grep_cached_first
from repro.apps.grep import grep
from repro.sim.units import PAGE_SIZE, human_time

NEEDLE = b"XNEEDLEX"  # stands in for the routine name being hunted


def main() -> None:
    machine = Machine.unix_utilities(cache_pages=128, seed=13)
    machine.boot()
    kernel = machine.kernel
    fs = machine.ext2

    tree = []
    for i in range(8):
        plants = {4_000: NEEDLE} if i == 6 else {}
        path_rel = f"linux/drivers/scsi/driver{i}.c"
        fs.create_text_file(path_rel, 32 * PAGE_SIZE, seed=500 + i,
                            plants=plants)
        tree.append(f"/mnt/ext2/{path_rel}")

    # the interrupted first search: the user hit ^C right after the
    # matching file scrolled past — it is the only thing still cached
    kernel.warm_file(tree[6])
    print(f"tree: {len(tree)} files x 128 KB; only driver6.c is cached\n")

    print("naive rescan (find -exec grep, file order):")
    with kernel.process() as naive:
        hit = None
        for path in tree:
            result = grep(kernel, path, NEEDLE, first_match_only=True)
            if result.count:
                hit = (path, result.matches[0].line_number)
                break
    print(f"  found in {hit[0]} line {hit[1]}")
    print(f"  {human_time(naive.elapsed)}, "
          f"{naive.counters.pages_read} pages read from disk\n")

    kernel.drop_caches()
    kernel.warm_file(tree[6])

    print("SLEDs-aware: grep files cheaper than 10 ms first:")
    with kernel.process() as clever:
        cheap, expensive = find_exec_grep_cached_first(
            kernel, "/mnt/ext2/linux", NEEDLE,
            threshold_seconds=0.010, name="*.c", stop_on_match=True)
    hits = [r for r in cheap + expensive if r.count]
    print(f"  found in {hits[0].path} line "
          f"{hits[0].matches[0].line_number} "
          f"(searched {len(cheap)} cached file(s) first)")
    print(f"  {human_time(clever.elapsed)}, "
          f"{clever.counters.pages_read} pages read from disk\n")

    speedup = naive.elapsed / clever.elapsed
    print(f"cached-first search is {speedup:.1f}x faster and avoided "
          f"{naive.counters.pages_read - clever.counters.pages_read} "
          f"page reads")


if __name__ == "__main__":
    main()
