#!/usr/bin/env python3
"""The "better citizen" claim: concurrent SLEDs scans share a cache.

The paper: by reordering, an application "may improve its performance by
orders of magnitude, as well as be a better citizen by reducing system
load."  That second half is about everyone else on the machine — so this
demo runs *two* word counts at once, interleaved over one kernel, each
re-reading a file it recently used.  Together the files exceed the cache:
every plain scan's faults evict the other scan's cached data, so both
lose.  The SLEDs pair drains cached data first and the system as a whole
does a quarter less device I/O.

The second half of the demo switches from time-sliced interleaving to
the discrete-event engine: three readers on three *different* devices
overlap their seeks, so the makespan collapses toward the slowest
reader instead of the sum of all three.

Run:  python examples/concurrent_citizens.py
"""

from repro import Machine
from repro.sim.tasks import (EventScheduler, RoundRobin, Task,
                             reader_task_async, wc_task)
from repro.sim.units import PAGE_SIZE, human_time


def run_pair(use_sleds: bool):
    machine = Machine.unix_utilities(cache_pages=672, seed=2026)
    machine.boot()
    kernel = machine.kernel
    size = 512 * PAGE_SIZE  # each file ~3/4 of the cache
    machine.ext2.create_text_file("proj/alpha.txt", size, seed=1)
    machine.ext2.create_text_file("proj/beta.txt", size, seed=2)
    kernel.warm_file("/mnt/ext2/proj/alpha.txt")
    kernel.warm_file("/mnt/ext2/proj/beta.txt")

    pages_before = kernel.counters.pages_read
    start = kernel.clock.now
    stats = RoundRobin(kernel, [
        Task("alpha", wc_task(kernel, "/mnt/ext2/proj/alpha.txt",
                              use_sleds=use_sleds)),
        Task("beta", wc_task(kernel, "/mnt/ext2/proj/beta.txt",
                             use_sleds=use_sleds)),
    ]).run()
    makespan = kernel.clock.now - start
    total_pages = kernel.counters.pages_read - pages_before
    return stats, makespan, total_pages


def main() -> None:
    print("two interleaved wc scans, files warm but jointly > cache\n")
    results = {}
    for use_sleds in (False, True):
        label = "with SLEDs" if use_sleds else "without SLEDs"
        stats, makespan, total_pages = run_pair(use_sleds)
        results[use_sleds] = (makespan, total_pages)
        print(f"=== {label} ===")
        for name, s in stats.items():
            print(f"  {name:6s} time {human_time(s.virtual_time):>10s}  "
                  f"faults {s.hard_faults:3d}  "
                  f"finished +{human_time(s.elapsed)} after start")
        print(f"  system: makespan {human_time(makespan)}, "
              f"{total_pages} pages from disk\n")

    (t0, p0), (t1, p1) = results[False], results[True]
    print(f"SLEDs pair: {100 * (1 - p1 / p0):.0f}% less device traffic, "
          f"{100 * (1 - t1 / t0):.0f}% shorter makespan — the win is "
          f"system-wide, not zero-sum between the two tasks.")


READERS = [("ext2", "/mnt/ext2/stream.dat"),
           ("cdrom", "/mnt/cdrom/stream.dat"),
           ("nfs", "/mnt/nfs/stream.dat")]


def _overlap_world():
    machine = Machine.unix_utilities(cache_pages=2048, seed=2027)
    machine.boot()
    size = 96 * PAGE_SIZE
    machine.ext2.create_text_file("stream.dat", size, seed=1)
    machine.cdrom.create_file("stream.dat", size)
    machine.nfs.create_text_file("stream.dat", size, seed=3)
    return machine


def run_overlap():
    print("\n=== event engine: three readers, three devices ===")
    solos = {}
    for name, path in READERS:
        machine = _overlap_world()
        kernel = machine.kernel
        start = kernel.clock.now
        EventScheduler(kernel, [
            Task(name, reader_task_async(kernel, path))]).run()
        solos[name] = kernel.clock.now - start

    machine = _overlap_world()
    kernel = machine.kernel
    engine = kernel.attach_engine()
    start = kernel.clock.now
    stats = EventScheduler(kernel, [
        Task(name, reader_task_async(kernel, path))
        for name, path in READERS]).run()
    makespan = kernel.clock.now - start
    report = engine.queue_report()
    kernel.detach_engine()

    for name, solo in solos.items():
        s = stats[name]
        print(f"  {name:6s} solo {human_time(solo):>10s}  "
              f"I/O wait {human_time(s.wait_time):>10s}  "
              f"faults {s.hard_faults:3d}")
    solo_sum = sum(solos.values())
    print(f"  serial sum {human_time(solo_sum)}, concurrent makespan "
          f"{human_time(makespan)} "
          f"({100 * (1 - makespan / solo_sum):.0f}% overlapped away)")
    print("  per-device queues:")
    for device, row in sorted(report.items()):
        print(f"    {device:12s} dispatched {row['dispatched']:3d}  "
              f"peak depth {row['depth_high_water']}  "
              f"queue wait {human_time(row['total_queue_wait_s'])}")


if __name__ == "__main__":
    main()
    run_overlap()
