#!/usr/bin/env python3
"""The gmc file-manager panel: reporting latency to users (paper §5.2).

"The SLEDs panel reports the length, offset, latency, and bandwidth of
each SLED, as well as the estimated total delivery time for the file.
Users can interactively use this panel to decide whether or not to access
files; this is expected to be especially useful in HSM systems and
low-bandwidth distributed systems."

This demo renders the panel for the same file on ext2, CD-ROM, and NFS,
cold and warm, showing how the estimates track the dynamic cache state.

Run:  python examples/interactive_file_manager.py
"""

from repro import Machine
from repro.apps.gmc import file_properties, format_panel, should_wait_prompt
from repro.sim.units import MB


def main() -> None:
    machine = Machine.unix_utilities(cache_pages=384, seed=77)
    machine.boot()
    kernel = machine.kernel

    for fs, mount in ((machine.ext2, "ext2"), (machine.cdrom, "cdrom"),
                      (machine.nfs, "nfs")):
        fs.create_text_file("pub/dataset.txt", 2 * MB, seed=3)

    print("=== properties panels, cold cache ===")
    for mount in ("ext2", "cdrom", "nfs"):
        panel = file_properties(kernel, f"/mnt/{mount}/pub/dataset.txt")
        print(f"[{mount}] {should_wait_prompt(panel, patience_seconds=1.0)}")

    print("\n=== the user reads half of the NFS copy, then re-opens it ===")
    fd = kernel.open("/mnt/nfs/pub/dataset.txt")
    kernel.read(fd, 1 * MB)
    kernel.close(fd)

    panel = file_properties(kernel, "/mnt/nfs/pub/dataset.txt")
    print(format_panel(panel))
    print(f"\ncached bytes now: {panel.cached_bytes} "
          f"({100 * panel.cached_bytes // panel.size}% of the file)")
    print(f"verdict: {should_wait_prompt(panel, patience_seconds=1.0)}")

    print("\nNote how the panel distinguishes the cached head (memory "
          "latency) from the remote tail (NFS latency) — information no "
          "spinning-cursor progress bar can give before the transfer "
          "starts.")


if __name__ == "__main__":
    main()
