#!/usr/bin/env python3
"""Quickstart: see SLEDs end to end in under a minute.

Builds the paper's Unix-utility machine (Table 2 devices), creates a file
larger than the buffer cache, warms the cache, and then:

1. fetches the file's SLED vector via the FSLEDS_GET ioctl;
2. estimates total delivery time under both attack plans;
3. reads the file in pick-library order and shows the fault/time win over
   a plain linear read (the paper's Figure 3 pathology, defeated).

Run:  python examples/quickstart.py
"""

from repro import Machine, sleds_total_delivery_time
from repro.apps.wc import wc
from repro.core.delivery import SLEDS_BEST
from repro.sim.units import MB, human_time


def main() -> None:
    # A 64 MB-class machine, scaled 1:16 so the demo runs instantly:
    # the cache holds ~2.6 MB and our "64 MB" file is 4 MB.
    machine = Machine.unix_utilities(cache_pages=672, seed=42)
    table = machine.boot()  # lmbench-style probe fills the sleds table
    print("boot-time sleds table (paper Table 2):")
    for key, (latency, bandwidth) in sorted(table.items()):
        print(f"  {key:10s} latency {human_time(latency):>10s}   "
              f"bandwidth {bandwidth / MB:5.1f} MB/s")

    kernel = machine.kernel
    machine.ext2.create_text_file("demo/big.txt", 4 * MB, seed=7)
    path = "/mnt/ext2/demo/big.txt"
    kernel.warm_file(path)  # a first pass: the tail ends up cached

    print("\nSLED vector after one linear pass (FSLEDS_GET):")
    fd = kernel.open(path)
    for sled in kernel.get_sleds(fd):
        print(f"  offset {sled.offset:>8}  length {sled.length:>8}  "
              f"latency {human_time(sled.latency):>10s}  "
              f"bandwidth {sled.bandwidth / MB:5.1f} MB/s")
    linear = sleds_total_delivery_time(kernel, fd)
    best = sleds_total_delivery_time(kernel, fd, SLEDS_BEST)
    kernel.close(fd)
    print(f"  estimated delivery: linear {human_time(linear)}, "
          f"cached-first {human_time(best)}")

    print("\nsecond pass over the file, plain vs SLEDs pick order:")
    with kernel.process() as plain:
        wc(kernel, path)
    kernel.drop_caches()
    kernel.warm_file(path)
    with kernel.process() as sleds:
        wc(kernel, path, use_sleds=True)
    print(f"  without SLEDs: {human_time(plain.elapsed)} "
          f"({plain.counters.pages_read} pages from disk)")
    print(f"  with SLEDs:    {human_time(sleds.elapsed)} "
          f"({sleds.counters.pages_read} pages from disk)")
    print(f"  speedup {plain.elapsed / sleds.elapsed:.2f}x — the warm "
          f"cache finally pays off")


if __name__ == "__main__":
    main()
