#!/usr/bin/env python3
"""Astronomy pipeline: the paper's LHEASOFT workload (§5.3).

Creates a FITS observation bigger than the file cache on the paper's
LHEASOFT machine (Table 3 devices), then runs the two adapted tools:

* ``fimhisto`` — copy the image and append a pixel-value histogram
  (three passes over the data: the Figure 3 cache pathology in the wild);
* ``fimgbin`` — rebin with a 2x2 and 4x4 boxcar filter.

Each runs with and without SLEDs, reproducing Figures 14 and 15 at demo
scale, and verifies the outputs are bit-identical either way.

Run:  python examples/astronomy_pipeline.py
"""

import numpy as np

from repro import Machine
from repro.fits import create_image, read_bintable
from repro.lhea import fimgbin, fimhisto
from repro.sim.units import human_time


def measure(kernel, label, fn):
    with kernel.process() as run:
        result = fn()
    print(f"  {label:22s} {human_time(run.elapsed):>10s}   "
          f"{run.counters.pages_read:5d} pages from disk")
    return result, run


def main() -> None:
    machine = Machine.lheasoft(cache_pages=256, seed=7)  # ~1 MB cache
    machine.boot()
    kernel = machine.kernel

    rng = np.random.default_rng(2026)
    image = rng.integers(0, 4096, size=(1024, 1024),
                         dtype=np.int16)  # 2 MB image, 2x the cache
    create_image(kernel, "/mnt/ext2/obs/m31.fits", image)
    print(f"observation: {image.shape[1]}x{image.shape[0]} int16 "
          f"({image.nbytes >> 20} MB), cache holds half of it\n")

    print("fimhisto (copy + histogram, 3 passes):")
    kernel.warm_file("/mnt/ext2/obs/m31.fits")
    plain, _ = measure(
        kernel, "without SLEDs",
        lambda: fimhisto(kernel, "/mnt/ext2/obs/m31.fits",
                         "/mnt/ext2/obs/m31_h.fits"))
    with_sleds, _ = measure(
        kernel, "with SLEDs",
        lambda: fimhisto(kernel, "/mnt/ext2/obs/m31.fits",
                         "/mnt/ext2/obs/m31_hs.fits", use_sleds=True))
    assert np.array_equal(plain.counts, with_sleds.counts)
    table = read_bintable(kernel, "/mnt/ext2/obs/m31_hs.fits", 1)
    print(f"  histogram identical in both modes; "
          f"{len(table.columns['COUNTS'])} bins appended to the output\n")

    print("fimgbin (boxcar rebin):")
    for factor in (4, 16):
        kernel.warm_file("/mnt/ext2/obs/m31.fits")
        measure(kernel, f"{factor}x without SLEDs",
                lambda f=factor: fimgbin(
                    kernel, "/mnt/ext2/obs/m31.fits",
                    f"/mnt/ext2/obs/m31_b{f}.fits", factor=f))
        measure(kernel, f"{factor}x with SLEDs",
                lambda f=factor: fimgbin(
                    kernel, "/mnt/ext2/obs/m31.fits",
                    f"/mnt/ext2/obs/m31_b{f}s.fits", factor=f,
                    use_sleds=True))
    print("\nnote how the 16x reduction (less write traffic) leaves more "
          "for SLEDs to win — the paper's Figure 15 observation.")


if __name__ == "__main__":
    main()
