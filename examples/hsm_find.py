#!/usr/bin/env python3
"""HSM latency management: pruning and reporting over a tape library.

The paper argues SLEDs matter most for hierarchical storage management,
where retrieval times span eleven orders of magnitude — microseconds for
cached pages, minutes for a shelved tape.  This demo builds an HSM machine
(two DLT-class drives, a shelf of cartridges, a disk staging cache) and
shows the three SLEDs use cases:

* **reporting** — gmc-style panels tell the user a shelved file is a long
  retrieval *before* touching it;
* **pruning** — ``find -latency -1`` selects only the data available within
  a second, never spinning up the robot;
* **reordering** — wc over a partially staged file drains page cache, then
  disk stage, then tape, in one sequential tape pass.

Run:  python examples/hsm_find.py
"""

from repro import Machine
from repro.apps.findutil import find
from repro.apps.gmc import file_properties, should_wait_prompt
from repro.apps.wc import wc
from repro.core.delivery import SLEDS_BEST
from repro.fs.content import SyntheticText
from repro.hsm.migration import MigrationDaemon
from repro.sim.units import MB, PAGE_SIZE, human_time


def main() -> None:
    machine = Machine.hsm(cache_pages=256, stage_pages=768, seed=99)
    machine.boot()
    kernel = machine.kernel
    hsm = machine.hsmfs

    # an archive of observation files spread over two cartridges
    files = {}
    for i in range(4):
        label = "VOL000" if i < 2 else "VOL001"
        size = 2 * MB
        inode = hsm.create_tape_file(f"archive/run{i}.dat", size, label)
        inode.content = SyntheticText(seed=100 + i, size=size)
        files[f"/mnt/hsm/archive/run{i}.dat"] = inode

    # run0 was read recently: it is staged on disk (and partly cached)
    kernel.warm_file("/mnt/hsm/archive/run0.dat")
    daemon = MigrationDaemon(hsm, cold_after=60.0)

    print("=== reporting: what would each retrieval cost? ===")
    for path in files:
        panel = file_properties(kernel, path)
        print(f"  {path:28s} best-case {human_time(panel.total_time_best):>10s}"
              f"  -> {should_wait_prompt(panel)}")

    print("\n=== pruning: find -latency -1 (data within one second) ===")
    quick = find(kernel, "/mnt/hsm", latency="-1", attack_plan=SLEDS_BEST)
    for hit in quick:
        print(f"  {hit.path}  ({human_time(hit.delivery_time)})")
    mounted = hsm.autochanger.mounted_labels()
    print(f"  tape drives touched: {mounted or 'none'} — pruning never "
          f"moves the robot")

    print("\n=== reordering: wc over the partially staged run0 ===")
    # stage out part of run0 so three levels coexist, then read it back
    with kernel.process() as plain:
        wc(kernel, "/mnt/hsm/archive/run0.dat")
    with kernel.process() as sleds:
        wc(kernel, "/mnt/hsm/archive/run0.dat", use_sleds=True)
    print(f"  without SLEDs: {human_time(plain.elapsed)}")
    print(f"  with SLEDs:    {human_time(sleds.elapsed)}")

    print("\n=== the migration daemon moves cold data back to tape ===")
    for inode in files.values():
        inode.atime = 0.0
    report = daemon.sweep(now=kernel.clock.now + 3600)
    print(f"  migrated: {report.migrated} "
          f"({human_time(report.seconds)} of tape time)")
    panel = file_properties(kernel, "/mnt/hsm/archive/run0.dat")
    print(f"  run0 now: {should_wait_prompt(panel)}")


if __name__ == "__main__":
    main()
