#!/usr/bin/env python3
"""Progress indicators: the paper's §3.3 "Reporting Latency" use case.

"Most applications which users interact with directly are occasionally
forced to retrieve significant amounts of data, resulting in the
appearance of icons informing the user that she must wait, but with no
indication of the expected duration. ... Dynamically calculated estimates
can be heavily skewed by high initial latency, such as in an HSM system.
Using SLEDs instead provides a clearer picture ... and can be provided
before the retrieval operation is initiated."

This demo retrieves a tape-resident file and prints, at each progress
sample, what the two estimators would show the user.  Watch the dynamic
estimator panic during the mount and slowly recover, while the SLEDs
estimate is sane from before the first byte.

Run:  python examples/progress_indicators.py
"""

from repro import Machine
from repro.apps.progress import retrieve_with_progress
from repro.fs.content import SyntheticText
from repro.sim.units import MB, human_time


def bar(fraction: float, width: int = 24) -> str:
    filled = int(fraction * width)
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def main() -> None:
    machine = Machine.hsm(cache_pages=256, seed=33)
    machine.boot()
    kernel = machine.kernel
    size = 2 * MB
    inode = machine.hsmfs.create_tape_file("survey/night42.dat", size,
                                           "VOL003")
    inode.content = SyntheticText(seed=9, size=size)
    path = "/mnt/hsm/survey/night42.dat"

    report = retrieve_with_progress(kernel, path, samples=10)
    print(f"retrieving {path} ({size >> 20} MB from a shelved cartridge)\n")
    print(f"before the first byte, SLEDs already estimate "
          f"{human_time(report.initial_estimate)} "
          f"(actual turned out to be {human_time(report.total_time)})\n")
    print(f"{'progress':26s} {'elapsed':>10} {'dynamic ETA':>12} "
          f"{'SLEDs ETA':>12}")
    for sample in report.samples:
        dynamic = ("   (no data)" if sample.eta_dynamic is None
                   else f"{human_time(sample.eta_dynamic):>12}")
        print(f"{bar(sample.fraction_done)} {sample.fraction_done:4.0%} "
              f"{human_time(sample.elapsed):>10} {dynamic} "
              f"{human_time(sample.eta_sleds):>12}")

    dynamic_err, sleds_err = report.estimator_errors(0.10)
    print(f"\nat 10% progress the dynamic estimator's implied total was "
          f"off by {100 * dynamic_err:.0f}%, the SLEDs estimate by "
          f"{100 * sleds_err:.0f}% — the tape mount skews rate "
          f"extrapolation exactly as the paper warns.")


if __name__ == "__main__":
    main()
