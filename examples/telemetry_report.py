#!/usr/bin/env python3
"""Telemetry end to end: metrics, SLED calibration, and a Chrome trace.

Builds the Unix-utility machine, attaches the observability stack, runs
``grep`` cold and then warm over a file larger than the cache window it
scans, and prints:

1. the per-run summary (virtual time, faults, hit ratio);
2. the SLED prediction-accuracy report — how close the FSLEDS_GET
   estimates were to the delivery times the kernel actually measured;
3. a few headline metrics from the Prometheus exposition;
4. a Chrome trace-event JSON file (load it in https://ui.perfetto.dev
   to see syscall -> fault -> device span nesting).

Run:  python examples/telemetry_report.py
"""

import json

from repro import Machine
from repro.apps.grep import grep
from repro.obs import Telemetry
from repro.sim.units import MB, human_time

TRACE_PATH = "telemetry_trace.json"


def run_once(kernel, label):
    with kernel.process() as run:
        result = grep(kernel, "/mnt/ext2/data/corpus.txt", b"XNEEDLEX",
                      use_sleds=True)
    print(f"{label:>5} grep: {result.count} match(es), "
          f"virtual time {human_time(run.elapsed):>10}, "
          f"faults {run.hard_faults:4d}, hit ratio {run.hit_ratio:6.1%}")
    return run


def main() -> None:
    machine = Machine.unix_utilities(cache_pages=1024, seed=42)
    machine.boot()
    machine.ext2.create_text_file("data/corpus.txt", 2 * MB, seed=7,
                                  plants={1_500_000: b"XNEEDLEX"})

    telemetry = Telemetry()
    machine.kernel.attach_telemetry(telemetry)
    run_once(machine.kernel, "cold")
    run_once(machine.kernel, "warm")
    machine.kernel.detach_telemetry()

    print()
    print(telemetry.accuracy.report().render())

    print("\nheadline metrics:")
    reads = telemetry.syscalls.labels(name="read").value
    faults = telemetry.fault_latency.labels(device="disk")
    issued = telemetry.readahead_issued.labels().value
    used = telemetry.readahead_used.labels().value
    print(f"  read() calls          {int(reads)}")
    print(f"  disk faults           {faults.count} "
          f"(mean {human_time(faults.mean)})")
    print(f"  readahead issued/used {int(issued)}/{int(used)} pages "
          f"({used / issued:0.0%} useful)" if issued else
          "  readahead             (none issued)")

    doc = telemetry.chrome_trace()
    with open(TRACE_PATH, "w") as handle:
        json.dump(doc, handle)
    print(f"\nwrote {len(doc['traceEvents'])} spans to {TRACE_PATH} "
          f"(open in https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
