#!/usr/bin/env python3
"""Telemetry end to end: metrics, SLED calibration, and a Chrome trace.

Builds the Unix-utility machine, attaches the observability stack, runs
``grep`` cold and then warm over a file larger than the cache window it
scans, and prints:

1. the per-run summary (virtual time, faults, hit ratio);
2. the SLED prediction-accuracy report — how close the FSLEDS_GET
   estimates were to the delivery times the kernel actually measured;
3. a few headline metrics from the Prometheus exposition;
4. the device-queue gauges after a concurrent phase under the event
   engine (two readers contending for the disk, one on NFS);
5. a Chrome trace-event JSON file (load it in https://ui.perfetto.dev
   to see syscall -> fault -> device span nesting).

Run:  python examples/telemetry_report.py
"""

import json

from repro import Machine
from repro.apps.grep import grep
from repro.obs import Telemetry
from repro.sim.tasks import EventScheduler, Task, reader_task_async
from repro.sim.units import MB, human_time

TRACE_PATH = "telemetry_trace.json"


def run_once(kernel, label):
    with kernel.process() as run:
        result = grep(kernel, "/mnt/ext2/data/corpus.txt", b"XNEEDLEX",
                      use_sleds=True)
    print(f"{label:>5} grep: {result.count} match(es), "
          f"virtual time {human_time(run.elapsed):>10}, "
          f"faults {run.hard_faults:4d}, hit ratio {run.hit_ratio:6.1%}")
    return run


def main() -> None:
    machine = Machine.unix_utilities(cache_pages=1024, seed=42)
    machine.boot()
    machine.ext2.create_text_file("data/corpus.txt", 2 * MB, seed=7,
                                  plants={1_500_000: b"XNEEDLEX"})

    machine.ext2.create_text_file("data/other.txt", MB, seed=8)
    machine.ext2.create_text_file("data/third.txt", MB, seed=10)
    machine.nfs.create_text_file("remote.txt", MB, seed=9)

    telemetry = Telemetry()
    kernel = machine.kernel
    kernel.attach_telemetry(telemetry)
    run_once(kernel, "cold")
    run_once(kernel, "warm")

    # concurrent phase: the event engine queues the two disk readers
    # behind each other while the NFS reader overlaps both
    kernel.attach_engine()
    EventScheduler(kernel, [
        Task("d1", reader_task_async(kernel, "/mnt/ext2/data/other.txt")),
        Task("d2", reader_task_async(kernel, "/mnt/ext2/data/third.txt")),
        Task("net", reader_task_async(kernel, "/mnt/nfs/remote.txt")),
    ]).run()
    kernel.detach_engine()
    kernel.detach_telemetry()

    print()
    print(telemetry.accuracy.report().render())

    print("\nheadline metrics:")
    reads = telemetry.syscalls.labels(name="read").value
    faults = telemetry.fault_latency.labels(device="disk")
    issued = telemetry.readahead_issued.labels().value
    used = telemetry.readahead_used.labels().value
    print(f"  read() calls          {int(reads)}")
    print(f"  disk faults           {faults.count} "
          f"(mean {human_time(faults.mean)})")
    print(f"  readahead issued/used {int(issued)}/{int(used)} pages "
          f"({used / issued:0.0%} useful)" if issued else
          "  readahead             (none issued)")

    print("\ndevice queues (concurrent phase):")
    for device in ("ext2-disk", "nfs-server"):
        wait = telemetry.queue_wait.labels(device=device)
        depth = telemetry.queue_depth_now.labels(device=device).value
        print(f"  {device:12s} waited requests {wait.count:3d}  "
              f"total wait {human_time(wait.sum):>10s}  "
              f"depth now {int(depth)}")

    doc = telemetry.chrome_trace()
    with open(TRACE_PATH, "w") as handle:
        json.dump(doc, handle)
    print(f"\nwrote {len(doc['traceEvents'])} spans to {TRACE_PATH} "
          f"(open in https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
