"""Figure 13: CDF of grep -q execution times over NFS, 64 MB file.

Paper shape: the without-SLEDs distribution spreads over tens of seconds
(the run "gained essentially no benefit from the fact that a majority of
the test file is cached"); the with-SLEDs distribution is concentrated at
low times.
"""

from conftest import summarize_rows

from repro.bench.experiments import run_fig13


def test_fig13_cdf_separation(benchmark, config):
    result = benchmark.pedantic(
        run_fig13, args=(config,), kwargs={"paper_mb": 64, "trials": 20},
        rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    rows = {row[0]: row for row in result.rows}
    median_without, median_with = rows[50][1], rows[50][2]
    assert median_with < median_without / 2, \
        "with-SLEDs median must be far below the without median"
    # the without distribution is wide; the with distribution concentrated
    spread_without = rows[90][1] - rows[10][1]
    spread_with = rows[90][2] - rows[10][2]
    assert spread_without > 0
    assert rows[60][2] < rows[60][1], \
        "with-SLEDs dominates through the 60th percentile"
