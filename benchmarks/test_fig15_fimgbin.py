"""Figure 15: fimgbin elapsed time, ext2, warm cache, 4x and 16x
reduction factors.

Paper shape: gains above the cache size; the 16x reduction (less write
traffic) gains more than the 4x reduction — "indicating that the write
traffic is an important factor".
"""

from conftest import summarize_rows

from repro.bench.experiments import run_fig15

SIZES = (16, 64)


def test_fig15_fimgbin_factors(benchmark, config):
    result = benchmark.pedantic(run_fig15, args=(config, SIZES),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    gains = {(row[0], row[1]): row[4] for row in result.rows}
    # below cache: parity for both factors
    assert abs(gains[(16, 4)]) < 5
    assert abs(gains[(16, 16)]) < 5
    # above cache: positive gains, 16x >= 4x
    assert gains[(64, 4)] > 5
    assert gains[(64, 16)] > 5
    assert gains[(64, 16)] >= gains[(64, 4)], \
        "less write traffic (16x) must leave more for SLEDs to win"
