"""Forensics overhead: the price of full latency attribution.

The forensics stack — lifecycle exemplar reservoir, SLO violation
pinning, bucket-sampled time series with OpenMetrics exemplars, and the
post-hoc blame/interference analysis — is observational by contract:
virtual time must be bit-identical with it attached or not (the zero-
cost property test proves that per run; this benchmark re-asserts it at
multi-tenant scale).  What it *does* cost is host CPU, and that price
is what this benchmark records.

One seeded multi-tenant contention mix (three disk tenants interleaving
chunk reads over a thrashing cache, plus an NFS tenant) runs twice:

* **bare** — engine only, nothing attached;
* **forensics** — telemetry + tenant-tracking SLO tracker + bucket
  time series feeding the exemplar reservoir + ``LatencyForensics``,
  followed by a full :meth:`analyze` (blame every record, fold the
  interference matrix, waterfall the top-K).

Hard gates (all deterministic, virtual-time):

* the two runs' virtual fingerprints are identical;
* every traced record acquires a blame vector that ``fsum``s to its
  latency exactly, so ``blamed == analyzed == reservoir.seen``;
* SLO violations pin exemplars (``violations > 0`` on this mix);
* interference-matrix row totals reconcile with the SLO tracker's
  per-tenant queue-wait pools to 1e-12 relative.

Host wall times — including the attach/analyze overhead ratio — live
under ``wall_clock``, which the ``sleds-bench check`` gate skips.
"""

from __future__ import annotations

import math
import time

from repro.bench.results import publish_bench
from repro.block.merge import BlockConfig
from repro.machine import Machine
from repro.obs import LatencyForensics, SloTracker, Telemetry
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import PAGE_SIZE

SEED = 7117
#: well below the tenants' cycling working set so the elevator stays
#: contended and queue-wait blame has real cross-tenant interference
CACHE_PAGES = 256
FILE_PAGES = 192

DISK_TENANTS = 3
TASKS_PER_TENANT = 40           # 120 disk tasks
CHUNKS_PER_TASK = 3
CHUNK_PAGES = 4

NFS_TASKS = 20
NFS_FILE_PAGES = 96

MERGE_ALL = BlockConfig(merge=True, plug=True)

SLO_OBJECTIVES = {"memory": 0.001, "disk": 0.02, "nfs": 0.06,
                  "cdrom": 1.0, "tape": 300.0}

#: reconciliation tolerance between matrix rows and SLO queue pools
RECONCILE_REL = 1e-12


def _world() -> Machine:
    machine = Machine.unix_utilities(cache_pages=CACHE_PAGES, seed=SEED)
    machine.boot()
    for t in range(DISK_TENANTS):
        machine.ext2.create_text_file(f"d{t}.dat",
                                      FILE_PAGES * PAGE_SIZE, seed=t)
    machine.nfs.create_text_file("n.dat", NFS_FILE_PAGES * PAGE_SIZE,
                                 seed=99)
    return machine


def _chunk_reader(kernel, path: str, task_index: int, file_pages: int):
    fd = kernel.open(path)
    span = file_pages - CHUNK_PAGES
    for c in range(CHUNKS_PER_TASK):
        page = ((task_index * 7 + c * 13) * CHUNK_PAGES) % span
        yield from kernel.pread_async(fd, page * PAGE_SIZE,
                                      CHUNK_PAGES * PAGE_SIZE)
    kernel.close(fd)


def _build_tasks(kernel) -> list[Task]:
    tasks: list[Task] = []
    for i in range(TASKS_PER_TENANT):
        for t in range(DISK_TENANTS):
            tasks.append(Task(
                f"d{t}.{i}",
                _chunk_reader(kernel, f"/mnt/ext2/d{t}.dat", i,
                              FILE_PAGES),
                tenant=f"tenant{t}"))
    for i in range(NFS_TASKS):
        tasks.append(Task(
            f"n.{i}", _chunk_reader(kernel, "/mnt/nfs/n.dat", i,
                                    NFS_FILE_PAGES),
            tenant="nfs0"))
    return tasks


def _fingerprint(machine, stats) -> tuple:
    kernel = machine.kernel
    counters = kernel.counters
    return (
        kernel.clock.now,
        counters.hard_faults, counters.pages_read, counters.cache_hits,
        counters.readahead_pages, counters.evictions,
        tuple(sorted((name, s.virtual_time, s.wait_time, s.hard_faults,
                      s.io_waits, s.finished_at)
                     for name, s in stats.items())),
    )


def _run(observed: bool) -> dict:
    machine = _world()
    kernel = machine.kernel
    telemetry = slo = forensics = None
    if observed:
        telemetry = Telemetry()
        telemetry.attach(kernel)
        forensics = LatencyForensics(kernel, top_k=64)
        telemetry.enable_timeseries(interval=0.002, sample_buckets=True,
                                    exemplars=forensics.reservoir)
        slo = SloTracker.for_classes(
            SLO_OBJECTIVES, registry=telemetry.registry,
            track_tenants=True).attach(telemetry)
        forensics.attach(telemetry, slo=slo)
    engine = kernel.attach_engine(block=MERGE_ALL)
    tasks = _build_tasks(kernel)
    start = kernel.clock.now
    wall_start = time.perf_counter()
    stats = EventScheduler(kernel, tasks, engine=engine).run()
    run_wall = time.perf_counter() - wall_start
    makespan = kernel.clock.now - start

    out = {
        "fingerprint": _fingerprint(machine, stats),
        "makespan_virtual_s": makespan,
        "tasks": len(tasks),
        "wall_s": run_wall,
    }
    if not observed:
        return out

    wall_start = time.perf_counter()
    blame_engine = forensics.blame_engine()
    records = list(telemetry.lifecycle.records)
    blamed = sum(
        1 for rec in records
        if math.fsum(blame_engine.blame(rec).values()) == rec.latency)
    report = forensics.analyze(top=10)
    out["analyze_wall_s"] = time.perf_counter() - wall_start

    rows = report.matrix.row_totals()
    pools = slo.tenant_queue_waits()
    worst_rel = 0.0
    for tenant, pooled in pools.items():
        row = rows.get(tenant, 0.0)
        if pooled:
            worst_rel = max(worst_rel, abs(row - pooled) / pooled)
        else:
            assert abs(row) < 1e-15
    out.update({
        "traced_records": len(records),
        "blamed_exactly": blamed,
        "analyzed": report.analyzed,
        "exemplars_seen": forensics.reservoir.seen,
        "exemplar_keys": len(forensics.reservoir.by_key),
        "slo_violations": forensics.reservoir.violations,
        "violation_exemplars": len(forensics.reservoir.pinned),
        "waterfalls": len(report.waterfalls),
        "folded_stacks": len(report.folded),
        "matrix_row_totals_s": rows,
        "slo_queue_pools_s": pools,
        "reconcile_worst_rel_err": worst_rel,
        "timeseries_samples": len(telemetry.timeseries),
    })
    return out


def test_forensics_overhead_and_exactness():
    bare = _run(observed=False)
    observed = _run(observed=True)

    # zero-cost contract at benchmark scale: attaching the full stack
    # does not move virtual time by one bit
    assert bare.pop("fingerprint") == observed.pop("fingerprint")

    # attribution gates: every traced record blames exactly, exemplars
    # saw every record, violations pinned exemplars
    assert observed["traced_records"] > 0
    assert observed["blamed_exactly"] == observed["traced_records"]
    assert observed["analyzed"] == observed["traced_records"]
    assert observed["exemplars_seen"] == observed["traced_records"]
    assert observed["slo_violations"] > 0
    assert observed["violation_exemplars"] > 0
    assert observed["waterfalls"] == 10
    assert observed["folded_stacks"] > 0
    assert observed["reconcile_worst_rel_err"] <= RECONCILE_REL

    bare_wall = bare.pop("wall_s")
    run_wall = observed.pop("wall_s")
    analyze_wall = observed.pop("analyze_wall_s")

    publish_bench("forensics_overhead", {
        "benchmark": "forensics_overhead",
        "description": (
            "multi-tenant contention mix (120 disk tasks over 3 tenants "
            "+ 20 NFS) bare vs full forensics stack; virtual time "
            "bit-identical, exact blame closure and matrix/SLO "
            "reconciliation hard-gated; host overhead under wall_clock"),
        "bare": bare,
        "forensics": observed,
        "wall_clock": {
            "bare_s": bare_wall,
            "forensics_run_s": run_wall,
            "analyze_s": analyze_wall,
            "attach_overhead_ratio": run_wall / bare_wall,
        },
    })
