"""Shared configuration for the benchmark suite.

Each benchmark regenerates one table/figure of the paper at a reduced but
meaningful scale (1:32 by default — cache and file sizes shrink together,
preserving every shape; see DESIGN.md §2) and asserts the figure's
qualitative claim.  Full-resolution regeneration:

    python -m repro.bench --run all            # 1:16 scale, 12 runs/point
    python -m repro.bench --run fig7 --full-scale
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import BenchConfig


@pytest.fixture(scope="session")
def config() -> BenchConfig:
    """The scale every benchmark runs at."""
    return BenchConfig(scale=32, runs=4, noise=0.02)


def summarize_rows(result, benchmark) -> None:
    """Attach the regenerated rows to the benchmark record."""
    benchmark.extra_info["exp_id"] = result.exp_id
    benchmark.extra_info["rows"] = [
        [str(v) for v in row] for row in result.rows]
