"""FSLEDS_GET scaling: amortized O(changed-state) vs the O(file-pages) walk.

Two claims, checked separately:

* **Counters** (robust, asserted): on an unchanged file a refetch makes
  *zero* filesystem estimate calls — the generation-stamped kernel cache
  answers it — and even a rebuild after a small residency change makes
  O(runs) batched calls, not O(npages) per-page calls.
* **Wall-clock** (recorded, host-dependent): repeated FSLEDS_GET via the
  stamped cache vs the paper's literal full-page walk, 16 refetches per
  file size up to 64 Ki pages.  Published as ``BENCH_sled_scaling.json``
  at the repo root (the ``sleds-bench check`` baseline) and under
  ``results/`` (the CI artifact); wall times live under each row's
  ``wall_clock`` key so the regression gate skips them.  The ≥5× floor
  at the largest size is asserted loosely (the observed ratio is orders
  of magnitude larger).
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.results import publish_bench

from repro.core.builder import build_sled_vector_full_walk
from repro.devices.disk import DiskDevice
from repro.fs.filesystem import Ext2Like
from repro.kernel.ioctl import FSLEDS_FILL
from repro.kernel.kernel import Kernel
from repro.sim.rng import RngStreams
from repro.sim.units import MB, PAGE_SIZE

SIZES_PAGES = [1024, 4096, 16384, 65536]
REFETCHES = 16
RESIDENT_PAGES = 32  # scattered pages faulted in before measuring

class EstimateCallCounter:
    """Count the filesystem estimate traffic the SLED builder generates."""

    def __init__(self, fs):
        self.page_calls = 0
        self.span_calls = 0
        self.runs_returned = 0
        orig_page = fs.page_estimate
        orig_span = fs.span_estimates

        def page_estimate(inode, page_index):
            self.page_calls += 1
            return orig_page(inode, page_index)

        def span_estimates(inode, start_page, npages):
            self.span_calls += 1
            runs = orig_span(inode, start_page, npages)
            self.runs_returned += len(runs)
            return runs

        fs.page_estimate = page_estimate
        fs.span_estimates = span_estimates

    def total(self) -> int:
        return self.page_calls + self.runs_returned

    def reset(self) -> None:
        self.page_calls = self.span_calls = self.runs_returned = 0


def _world(npages: int):
    kernel = Kernel(cache_pages=max(256, 2 * RESIDENT_PAGES),
                    rng=RngStreams(3))
    fs = Ext2Like(DiskDevice(name="d", capacity=8 * (1 << 30),
                             rng=np.random.default_rng(3)), name="ext2")
    kernel.mount("/", fs)
    fs.create_file("f", npages * PAGE_SIZE)
    kernel.ioctl(-1, FSLEDS_FILL,
                 {"memory": (1e-7, 48 * MB), "ext2": (0.018, 9 * MB)})
    fd = kernel.open("/f")
    inode = kernel._fd(fd).inode
    # scatter some residency so vectors are multi-SLED
    stride = max(1, npages // RESIDENT_PAGES)
    for page in range(0, npages, stride):
        kernel.page_cache.insert((inode.id, page))
    return kernel, fs, fd, inode


def test_refetch_estimate_calls_drop_to_zero():
    """Counter assertion: per-refetch estimate-call count on an unchanged
    file is O(runs) for the first build and exactly 0 afterwards."""
    for npages in SIZES_PAGES[:2]:
        kernel, fs, fd, inode = _world(npages)
        counter = EstimateCallCounter(fs)
        kernel.get_sleds(fd)
        resident = len(kernel.page_cache.resident_set(inode.id))
        # the rebuild asks per gap between resident intervals, never per page
        assert counter.page_calls == 0
        assert counter.span_calls <= resident + 1
        assert counter.runs_returned <= 2 * resident + 1 < npages
        counter.reset()
        hits_before = kernel.counters.sleds_cache_hits
        for _ in range(REFETCHES):
            kernel.get_sleds(fd)
        assert counter.total() == 0
        assert kernel.counters.sleds_cache_hits == hits_before + REFETCHES


def test_rebuild_after_change_is_o_runs():
    """A one-page residency change triggers exactly one rebuild, still
    with O(runs) estimate traffic."""
    kernel, fs, fd, inode = _world(4096)
    kernel.get_sleds(fd)
    counter = EstimateCallCounter(fs)
    kernel.page_cache.insert((inode.id, 1))  # perturb the stamp
    builds_before = kernel.counters.sleds_builds
    kernel.get_sleds(fd)
    kernel.get_sleds(fd)
    assert kernel.counters.sleds_builds == builds_before + 1
    resident = len(kernel.page_cache.resident_set(inode.id))
    assert 0 < counter.total() <= 2 * resident + 1


def test_wallclock_scaling_and_record():
    """Time 16 refetches per size both ways and archive the curve."""
    rows = []
    for npages in SIZES_PAGES:
        kernel, fs, fd, inode = _world(npages)
        counter = EstimateCallCounter(fs)
        kernel.get_sleds(fd)  # prime the stamp cache
        build_calls = counter.total()
        t0 = time.perf_counter()
        for _ in range(REFETCHES):
            vector = kernel.get_sleds(fd)
        t_incremental = time.perf_counter() - t0
        refetch_calls = counter.total() - build_calls
        t0 = time.perf_counter()
        for _ in range(REFETCHES):
            reference = build_sled_vector_full_walk(
                kernel.page_cache, fs, inode, kernel.sleds_table)
        t_full = time.perf_counter() - t0
        assert vector == reference  # amortization never changes the answer
        assert refetch_calls == 0
        rows.append({
            "npages": npages,
            "refetches": REFETCHES,
            "resident_pages": len(kernel.page_cache.resident_set(inode.id)),
            "sleds": len(vector),
            "estimate_calls_first_build": build_calls,
            "estimate_calls_per_refetch": refetch_calls // REFETCHES,
            "full_walk_estimate_calls_per_refetch": npages,
            # host-dependent: excluded from the sleds-bench check gate
            "wall_clock": {
                "t_full_walk_s": t_full,
                "t_incremental_s": t_incremental,
                "speedup": t_full / t_incremental if t_incremental > 0
                           else float("inf"),
            },
        })
    publish_bench("sled_scaling", {
        "benchmark": "sled_scaling",
        "description": "FSLEDS_GET: stamped-cache refetch vs full-page walk",
        "rows": rows,
    })
    largest = rows[-1]
    assert largest["npages"] == 65536
    assert largest["wall_clock"]["speedup"] >= 5.0
