"""Tables 2 and 3: boot-time device characterisation.

Paper rows — Table 2: memory 175 ns / 48 MB/s, disk 18 ms / 9.0 MB/s,
CD-ROM 130 ms / 2.8 MB/s, NFS 270 ms / 1.0 MB/s.  Table 3: memory
210 ns / 87 MB/s, disk 16.5 ms / 7.0 MB/s.
"""

from conftest import summarize_rows

from repro.bench.experiments import run_table2, run_table3
from repro.bench.lmbench import characterize
from repro.devices.disk import DiskDevice
from repro.machine import Machine
from repro.sim.units import MB

import numpy as np


def test_table2_characterisation(benchmark, config):
    result = benchmark.pedantic(run_table2, args=(config,),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    levels = dict(zip(result.column("level"),
                      zip(result.column("latency"),
                          result.column("bandwidth MB/s"))))
    assert set(levels) == {"memory", "ext2", "iso9660", "nfs"}
    assert 7.5 <= levels["ext2"][1] <= 10.5        # paper: 9.0 MB/s
    assert 2.2 <= levels["iso9660"][1] <= 3.2      # paper: 2.8 MB/s
    assert 0.8 <= levels["nfs"][1] <= 1.2          # paper: 1.0 MB/s


def test_table3_characterisation(benchmark, config):
    result = benchmark.pedantic(run_table3, args=(config,),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    levels = dict(zip(result.column("level"),
                      result.column("bandwidth MB/s")))
    assert 5.8 <= levels["ext2"] <= 8.2            # paper: 7.0 MB/s


def test_micro_lmbench_disk_probe(benchmark):
    """Microbenchmark: one full disk characterisation pass."""
    def probe():
        disk = DiskDevice(rng=np.random.default_rng(0))
        return characterize(disk)

    latency, bandwidth = benchmark(probe)
    assert 0.014 <= latency <= 0.022
    assert 7.5 * MB <= bandwidth <= 10.5 * MB


def test_micro_boot_fill(benchmark):
    """Microbenchmark: whole-machine boot (mount + characterise + fill)."""
    def boot():
        machine = Machine.unix_utilities(cache_pages=128, seed=1)
        return machine.boot()

    entries = benchmark(boot)
    assert "memory" in entries
