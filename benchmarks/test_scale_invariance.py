"""Verify the harness's scaling claim (DESIGN.md §2): shapes are
invariant under the linear scale factor.

The whole benchmark methodology rests on this — cache and file sizes
shrink together, every modelled cost is linear in file size, so speedup
ratios and paper-equivalent times must agree across scales. This
benchmark runs the same wc point at 1:16 and 1:64 and asserts they do.
"""

import dataclasses

from conftest import summarize_rows

from repro.apps.wc import wc
from repro.bench.measure import measure_runs
from repro.bench.workloads import BenchConfig, text_workload


def _point(scale: int, paper_mb: float, runs: int = 5):
    config = BenchConfig(scale=scale, runs=runs, noise=0.0, seed=777)
    times = {}
    pages = {}
    for use_sleds in (False, True):
        workload = text_workload(config, paper_mb, "/mnt/ext2",
                                 seed_salt=1)
        kernel = workload.kernel

        def run(k=kernel, p=workload.path, s=use_sleds):
            wc(k, p, use_sleds=s)

        stats = measure_runs(kernel, run, runs=runs)
        times[use_sleds] = config.to_paper_seconds(stats.time.mean)
        pages[use_sleds] = stats.pages.mean * scale
    return times, pages


def test_speedup_ratio_scale_invariant(benchmark):
    def both_scales():
        return _point(16, 64), _point(64, 64)

    (t16, p16), (t64, p64) = benchmark.pedantic(both_scales,
                                                rounds=1, iterations=1)
    ratio16 = t16[False] / t16[True]
    ratio64 = t64[False] / t64[True]
    benchmark.extra_info["ratio_scale16"] = round(ratio16, 3)
    benchmark.extra_info["ratio_scale64"] = round(ratio64, 3)
    assert abs(ratio16 - ratio64) < 0.15 * ratio16, \
        f"speedup ratio drifted across scales: {ratio16} vs {ratio64}"


def test_paper_equivalent_times_scale_invariant(benchmark):
    (t16, p16), (t64, p64) = benchmark.pedantic(
        lambda: (_point(16, 96), _point(64, 96)), rounds=1, iterations=1)
    for mode in (False, True):
        a, b = t16[mode], t64[mode]
        assert abs(a - b) < 0.15 * max(a, b), \
            f"paper-equivalent seconds drifted: {a} vs {b} (sleds={mode})"


def test_device_page_counts_scale_linearly(benchmark):
    (t16, p16), (t64, p64) = benchmark.pedantic(
        lambda: (_point(16, 96), _point(64, 96)), rounds=1, iterations=1)
    for mode in (False, True):
        a, b = p16[mode], p64[mode]
        assert abs(a - b) < 0.15 * max(a, b, 1), \
            f"scaled page counts drifted: {a} vs {b} (sleds={mode})"
