"""Figure 10: grep (all matches) on CD-ROM, warm cache.

Paper shape: a small CPU overhead for small (fully cached) files — the
price of buffering and sorting matches; for large files a roughly constant
gain (paper: ~15 s) equal to the CD-ROM cache-fill time the non-SLEDs run
wastes.
"""

from conftest import summarize_rows

from repro.bench.experiments import run_fig10

SIZES = (24, 40, 64, 80, 96)


def test_fig10_grep_all_matches_cdrom(benchmark, config):
    result = benchmark.pedantic(run_fig10, args=(config, SIZES),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    gains = dict(zip(result.column("MB"), result.column("gain s")))
    # small files: bounded CPU overhead, no catastrophic loss
    assert -2.5 < gains[24] <= 0.5
    assert -2.5 < gains[40] <= 0.5
    # large files: a clear, positive, roughly constant gain
    for mb in (64, 80, 96):
        assert gains[mb] > 0.5, f"no SLEDs gain at {mb} MB"
    spread = max(gains[mb] for mb in (64, 80, 96)) - \
        min(gains[mb] for mb in (64, 80, 96))
    assert spread < 0.8 * max(gains[96], 1e-9), \
        "gain should be roughly constant above the cache size"
