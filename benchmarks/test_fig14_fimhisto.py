"""Figure 14: fimhisto elapsed time, ext2, warm cache.

Paper shape: "the familiar pattern of SLEDs offering a benefit above
roughly the file system buffer cache size" — a 15-25 % elapsed-time
reduction and 30-50 % fault reduction for 48-64 MB files, capped by the
~1/4 write traffic SLEDs cannot help with.
"""

from conftest import summarize_rows

from repro.bench.experiments import run_fig14

SIZES = (16, 48, 64)


def test_fig14_fimhisto(benchmark, config):
    result = benchmark.pedantic(run_fig14, args=(config, SIZES),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    rows = {row[0]: row for row in result.rows}
    # below cache: parity
    assert abs(rows[16][5]) < 5
    # above cache: meaningful but moderate gains (write traffic caps them)
    for mb in (48, 64):
        time_gain, fault_reduction = rows[mb][5], rows[mb][6]
        assert 8 < time_gain < 60, f"time gain {time_gain}% at {mb} MB"
        assert 20 < fault_reduction < 70, \
            f"fault reduction {fault_reduction}% at {mb} MB"
    # the gains are smaller than wc/grep's order-of-magnitude wins
    t0, t1 = rows[64][1], rows[64][3]
    assert t0 / t1 < 2.5
