"""Benchmarks for the future-work extensions: zone-aware SLEDs,
client/server SLEDs, flash, progress estimators, and the remaining
design-choice ablations."""

from conftest import summarize_rows

from repro.bench.ablations import (
    run_abl_aio,
    run_abl_fragmentation,
    run_abl_mmap,
    run_abl_pin,
    run_abl_scheduler,
    run_extD,
    run_extE,
    run_extF,
    run_extG,
)


def test_extD_zone_aware_accuracy(benchmark, config):
    result = benchmark.pedantic(run_extD, args=(config,),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    errors = {(row[0], row[1]): row[4] for row in result.rows}
    assert errors[("per-zone", "inner")] < errors[("per-device", "inner")]


def test_extE_client_server_sleds(benchmark, config):
    result = benchmark.pedantic(run_extE, args=(config,),
                                kwargs={"trials": 5},
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    times = dict(zip(result.column("mode"),
                     result.column("time s (paper-eq)")))
    assert times["server SLEDs"] < times["client-only SLEDs"]


def test_extF_flash_device_independence(benchmark, config):
    result = benchmark.pedantic(run_extF, args=(config,),
                                kwargs={"sizes_mb": (64, 96)},
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    by_key = {(row[0], row[1]): row[4] for row in result.rows}
    # on the 1999 disk, SLEDs wins above the cache; on flash the gap to
    # memory vanishes and so does the win — SLEDs report both correctly
    assert by_key[("disk", 64)] > 1.3
    assert by_key[("flash", 64)] < by_key[("disk", 64)]


def test_extG_progress_estimators(benchmark, config):
    result = benchmark.pedantic(run_extG, args=(config,),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    hsm_rows = [row for row in result.rows if row[0] == "hsm"]
    # the dynamic estimator's early error dwarfs the SLEDs estimate's
    assert hsm_rows[0][2] > 5 * hsm_rows[0][3]
    # and it improves as the one-time cost amortises
    assert hsm_rows[-1][2] < hsm_rows[0][2]


def test_abl_mmap(benchmark, config):
    result = benchmark.pedantic(run_abl_mmap, args=(config,),
                                kwargs={"sizes_mb": (24, 40)},
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    for row in result.rows:
        assert row[3] < row[2], "mmap must beat read()-based SLEDs"


def test_abl_pin(benchmark, config):
    result = benchmark.pedantic(run_abl_pin, args=(config,),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    pages = dict(zip(result.column("pinning"),
                     result.column("device pages")))
    assert pages["pinned"] < pages["unpinned"]


def test_abl_scheduler(benchmark, config):
    result = benchmark.pedantic(run_abl_scheduler, args=(config,),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    times = dict(zip(result.column("scheduler"),
                     result.column("sync s (paper-eq)")))
    assert times["clook"] < times["fcfs"]


def test_abl_fragmentation(benchmark, config):
    result = benchmark.pedantic(run_abl_fragmentation, args=(config,),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    for row in result.rows:
        assert row[3] > 1.1  # SLEDs wins on clean and aged layouts


def test_abl_aio(benchmark, config):
    result = benchmark.pedantic(run_abl_aio, args=(config,),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    times = result.column("time s (paper-eq)")
    assert times[0] < times[1]


def test_extH_better_citizen(benchmark, config):
    from repro.bench.ablations import run_extH
    result = benchmark.pedantic(run_extH, args=(config,),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    pages = dict(zip(result.column("mode"),
                     result.column("total device pages")))
    assert pages["with SLEDs"] < pages["without"]


def test_extJ_interrupted_search(benchmark, config):
    from repro.bench.ablations import run_extJ
    result = benchmark.pedantic(run_extJ, args=(config,),
                                kwargs={"trials": 6},
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    pages = dict(zip(result.column("strategy"),
                     result.column("device pages")))
    times = dict(zip(result.column("strategy"),
                     result.column("time s (paper-eq)")))
    assert pages["cached-first"] == 0, \
        "the SLEDs-aware search must touch no device when the match is cached"
    assert times["cached-first"] < times["naive rescan"]


def test_extI_fileset_tape_batching(benchmark, config):
    from repro.bench.ablations import run_extI
    result = benchmark.pedantic(run_extI, args=(config,),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    exchanges = dict(zip(result.column("order"),
                         result.column("cartridge exchanges")))
    assert exchanges["sleds order"] < exchanges["name order"]
