"""Concurrent I/O engine: overlap across independent devices.

The discrete-event engine exists so that one task's CPU (and another
device's service) runs *during* a device's seek — the synchronous
substrate serializes everything on one clock.  This benchmark runs N
independent readers, one per device class (ext2 disk, CD-ROM, NFS), solo
and then concurrently under the :class:`~repro.sim.tasks.EventScheduler`:

* **asserted**: the concurrent makespan is strictly less than the sum of
  the solo virtual times (overlap happened) and no smaller than the
  slowest solo run (no time is invented);
* **recorded**: per-device solo times, makespan, overlap ratio, aggregate
  throughput, and the engine's queue report, published as
  ``BENCH_concurrent_engine.json`` at the repo root (the committed
  ``sleds-bench check`` baseline) and under ``results/`` (CI artifact).

Everything measured here is *virtual* time — deterministic across hosts,
so every leaf of the payload participates in the regression gate.
"""

from __future__ import annotations

from repro.bench.results import publish_bench
from repro.machine import Machine
from repro.sim.tasks import EventScheduler, Task, reader_task_async
from repro.sim.units import PAGE_SIZE

FILE_PAGES = 192  # 768 KB per reader: long enough to amortize readahead
SEED = 777

READERS = [
    ("ext2", "/mnt/ext2/bench.dat"),
    ("cdrom", "/mnt/cdrom/bench.dat"),
    ("nfs", "/mnt/nfs/bench.dat"),
]


def _world() -> Machine:
    machine = Machine.unix_utilities(cache_pages=4096, seed=SEED)
    machine.boot()
    size = FILE_PAGES * PAGE_SIZE
    machine.ext2.create_text_file("bench.dat", size, seed=1)
    machine.cdrom.create_file("bench.dat", size)
    machine.nfs.create_text_file("bench.dat", size, seed=3)
    return machine


def _solo_time(path: str) -> float:
    machine = _world()
    kernel = machine.kernel
    start = kernel.clock.now
    EventScheduler(kernel, [
        Task("r", reader_task_async(kernel, path))]).run()
    return kernel.clock.now - start


def test_concurrent_overlap_and_record():
    solos = {name: _solo_time(path) for name, path in READERS}
    solo_sum = sum(solos.values())

    machine = _world()
    kernel = machine.kernel
    engine = kernel.attach_engine()
    start = kernel.clock.now
    tasks = [Task(name, reader_task_async(kernel, path))
             for name, path in READERS]
    stats = EventScheduler(kernel, tasks).run()
    makespan = kernel.clock.now - start
    queue_report = engine.queue_report()
    kernel.detach_engine()

    # overlap: strictly better than running the readers back to back,
    # but never better than the slowest reader alone
    assert makespan < solo_sum
    assert makespan >= max(solos.values()) * (1 - 1e-12)

    overlap_ratio = makespan / solo_sum
    total_bytes = len(READERS) * FILE_PAGES * PAGE_SIZE
    publish_bench("concurrent_engine", {
        "benchmark": "concurrent_engine",
        "description": ("N independent readers, one per device class, "
                        "solo vs concurrent under the event engine"),
        "readers": len(READERS),
        "file_pages_each": FILE_PAGES,
        "solo_virtual_s": solos,
        "solo_sum_virtual_s": solo_sum,
        "concurrent_makespan_virtual_s": makespan,
        "overlap_ratio": overlap_ratio,
        "speedup_vs_serial": solo_sum / makespan,
        "aggregate_throughput_mb_per_virtual_s":
            total_bytes / makespan / (1 << 20),
        "per_task": {
            name: {
                "virtual_time_s": s.virtual_time,
                "wait_time_s": s.wait_time,
                "hard_faults": s.hard_faults,
                "io_waits": s.io_waits,
            } for name, s in stats.items()
        },
        "queue_report": queue_report,
    })
    assert overlap_ratio < 1.0


def test_contended_device_queues_requests():
    """Two readers on the *same* disk: the elevator queues them and the
    makespan cannot beat the device-bound serial time."""
    machine = Machine.unix_utilities(cache_pages=4096, seed=SEED + 1)
    machine.boot()
    size = 64 * PAGE_SIZE
    machine.ext2.create_text_file("a.dat", size, seed=1)
    machine.ext2.create_text_file("b.dat", size, seed=2)
    kernel = machine.kernel
    engine = kernel.attach_engine()
    EventScheduler(kernel, [
        Task("a", reader_task_async(kernel, "/mnt/ext2/a.dat")),
        Task("b", reader_task_async(kernel, "/mnt/ext2/b.dat")),
    ]).run()
    report = engine.queue_report()["ext2-disk"]
    kernel.detach_engine()
    assert report["depth_high_water"] >= 2
    assert report["total_queue_wait_s"] > 0.0
