"""Figures 7 and 8: wc over NFS with/without SLEDs, warm cache.

Paper shape: SLEDs shows an advantage once the file exceeds the ~42 MB
file cache; the absolute gap stays roughly constant beyond that; the
speedup ratio peaks (paper: ~4.5) just above the cache size and declines
gradually toward larger files.
"""

from conftest import summarize_rows

from repro.bench.experiments import run_fig7, run_fig8

SIZES = (16, 32, 48, 64, 96, 128)


def test_fig7_wc_nfs_times(benchmark, config):
    result = benchmark.pedantic(run_fig7, args=(config, SIZES),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    speedups = dict(zip(result.column("MB"), result.column("speedup")))
    without = dict(zip(result.column("MB"), result.column("without s")))
    # below cache: both modes near parity (no benefit, bounded overhead)
    assert 0.6 <= speedups[16] <= 1.3
    assert 0.6 <= speedups[32] <= 1.3
    # above cache: SLEDs wins
    assert speedups[64] > 1.5
    assert speedups[96] > 1.3
    assert speedups[128] > 1.2
    # the without-SLEDs curve keeps growing with file size
    assert without[128] > without[64] > without[32]


def test_fig8_speedup_peak_location(benchmark, config):
    result = benchmark.pedantic(run_fig8, args=(config, SIZES),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    speedups = dict(zip(result.column("MB"), result.column("speedup")))
    peak_mb = max(speedups, key=speedups.get)
    # paper: best percentage gain lands just above the cache size (~60 MB)
    assert 48 <= peak_mb <= 96
    assert speedups[peak_mb] > 2.0
    # gradual decline after the peak, not a cliff
    assert speedups[128] > 1.0
