"""Figure 9: wc page faults on CD-ROM, warm cache.

Paper shape: without SLEDs the fault count rises sharply once the file no
longer fits in the cache (closely tracking execution time); with SLEDs the
increase is gradual — the cached fraction never faults.
"""

from conftest import summarize_rows

from repro.bench.experiments import run_fig9

SIZES = (24, 48, 64, 96)


def test_fig9_wc_cdrom_faults(benchmark, config):
    result = benchmark.pedantic(run_fig9, args=(config, SIZES),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    rows = {row[0]: row for row in result.rows}
    # below cache: no device I/O at all on a warm cache
    assert rows[24][1] == 0 and rows[24][2] == 0
    # above cache: without-SLEDs faults grow ~linearly with size...
    assert rows[96][1] > rows[64][1] > rows[48][1] > 0
    # ...while SLEDs cuts them by at least a quarter everywhere
    for mb in (48, 64, 96):
        assert rows[mb][3] > 25, f"fault reduction at {mb} MB too small"
    # and the with-SLEDs curve stays below the without curve
    assert rows[96][2] < rows[96][1]
