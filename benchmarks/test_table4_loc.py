"""Table 4: lines of code modified per SLEDs-adapted application."""

from conftest import summarize_rows

from repro.bench.experiments import run_table4


def test_table4_loc(benchmark, config):
    result = benchmark.pedantic(run_table4, args=(config,),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    sleds = dict(zip(result.column("application"),
                     result.column("sleds lines (ours)")))
    # the paper's ordering claim: grep needed by far the most change
    assert sleds["grep"] == max(
        v for k, v in sleds.items() if k != "cfitsio (ff library)")
    assert all(v > 0 for v in sleds.values())
