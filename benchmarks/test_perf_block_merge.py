"""Block-layer merge/plug + SLED prefetch: fewer requests, lower latency.

Two segments, both pure virtual time (deterministic across hosts, every
non-``wall_clock`` leaf participates in the ``sleds-bench check`` gate):

* **Segment A — coalescing.**  Three tasks stride positional reads across
  one shared cold ext2 file (adjacent chunks land on different tasks, so
  only cross-task merging can batch them).  Baseline engine vs the same
  workload with merging + plugging on.  Asserted: >= 20% fewer device
  read requests, lower mean hard-fault latency, lower makespan.
* **Segment B — prefetching.**  A compute-heavy reader walks a cold file
  page by page; with a :class:`~repro.sim.prefetch.Prefetcher` fed from
  the file's SLED vector the device works during the compute.  Asserted:
  lower makespan and speculation actually used.

Host wall-clock seconds are recorded under ``wall_clock`` keys, which the
regression gate ignores.
"""

from __future__ import annotations

import time

from repro.bench.results import publish_bench
from repro.block.merge import BlockConfig
from repro.machine import Machine
from repro.sim.prefetch import Prefetcher
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import PAGE_SIZE

SEED = 4242
FILE_PAGES = 384
READERS = 3
CHUNK_PAGES = 4
COMPUTE_PER_PAGE = 200e-6  # seconds of CPU per page in segment B


def _world():
    machine = Machine.unix_utilities(cache_pages=4096, seed=SEED)
    machine.boot()
    machine.ext2.create_text_file("bench.dat", FILE_PAGES * PAGE_SIZE,
                                  seed=1)
    return machine


def _striding_readers(kernel):
    """Adjacent chunks go to different tasks — the merge-or-nothing
    shape: no single task ever issues two adjacent requests."""
    nchunks = FILE_PAGES // CHUNK_PAGES

    def reader(start):
        fd = kernel.open("/mnt/ext2/bench.dat")
        for chunk in range(start, nchunks, READERS):
            yield from kernel.pread_async(
                fd, chunk * CHUNK_PAGES * PAGE_SIZE,
                CHUNK_PAGES * PAGE_SIZE)
        kernel.close(fd)

    return [Task(f"r{i}", reader(i)) for i in range(READERS)]


def _run_segment_a(block):
    machine = _world()
    kernel = machine.kernel
    engine = kernel.attach_engine(block=block)
    start = kernel.clock.now
    stats = EventScheduler(kernel, _striding_readers(kernel),
                           engine=engine).run()
    makespan = kernel.clock.now - start
    disk = machine.ext2.device
    faults = sum(s.hard_faults for s in stats.values())
    wait = sum(s.wait_time for s in stats.values())
    return {
        "makespan_virtual_s": makespan,
        "device_read_requests": disk.stats.reads,
        "device_bytes_read": disk.stats.bytes_read,
        "hard_faults": faults,
        "mean_fault_latency_virtual_s": wait / faults,
        "queue_report": engine.queue_report(),
    }


def _run_segment_b(prefetch: bool):
    machine = _world()
    kernel = machine.kernel
    engine = kernel.attach_engine()
    result = {}

    def reader():
        fd = kernel.open("/mnt/ext2/bench.dat")
        prefetcher = None
        if prefetch:
            prefetcher = Prefetcher(kernel).attach()
            prefetcher.prefetch_fd(fd)
        for page in range(FILE_PAGES):
            yield from kernel.pread_async(fd, page * PAGE_SIZE, PAGE_SIZE)
            kernel.charge_cpu(COMPUTE_PER_PAGE)
        kernel.close(fd)
        if prefetcher is not None:
            result["prefetch"] = {
                "issued_pages": prefetcher.issued_pages,
                "used_pages": prefetcher.used_pages,
                "completed_requests": prefetcher.completed_requests,
                "cancelled_requests": prefetcher.cancelled_requests,
                "failed_requests": prefetcher.failed_requests,
            }

    start = kernel.clock.now
    stats = EventScheduler(kernel, [Task("r", reader())],
                           engine=engine).run()
    result["makespan_virtual_s"] = kernel.clock.now - start
    result["hard_faults"] = stats["r"].hard_faults
    return result


def test_block_merge_and_prefetch_record():
    wall_start = time.perf_counter()

    baseline = _run_segment_a(None)
    merged = _run_segment_a(BlockConfig(merge=True, plug=True))

    # >= 20% fewer device requests, same payload bytes delivered
    assert (merged["device_read_requests"]
            <= 0.8 * baseline["device_read_requests"])
    assert merged["device_bytes_read"] == baseline["device_bytes_read"]
    assert merged["hard_faults"] == baseline["hard_faults"]
    # amortized overhead/positioning: cheaper faults, shorter run
    assert (merged["mean_fault_latency_virtual_s"]
            < baseline["mean_fault_latency_virtual_s"])
    assert merged["makespan_virtual_s"] < baseline["makespan_virtual_s"]

    demand = _run_segment_b(prefetch=False)
    speculative = _run_segment_b(prefetch=True)
    assert (speculative["makespan_virtual_s"]
            < demand["makespan_virtual_s"])
    assert speculative["prefetch"]["used_pages"] > 0
    assert speculative["prefetch"]["failed_requests"] == 0

    request_reduction = 1.0 - (merged["device_read_requests"]
                               / baseline["device_read_requests"])
    publish_bench("block_merge", {
        "benchmark": "block_merge",
        "description": ("request coalescing + plugged dispatch vs plain "
                        "engine on striding concurrent readers; SLED "
                        "prefetch vs demand paging on a compute-bound "
                        "reader"),
        "file_pages": FILE_PAGES,
        "readers": READERS,
        "chunk_pages": CHUNK_PAGES,
        "coalescing": {
            "baseline": baseline,
            "merged": merged,
            "request_reduction": request_reduction,
            "latency_speedup": (
                baseline["mean_fault_latency_virtual_s"]
                / merged["mean_fault_latency_virtual_s"]),
            "makespan_speedup": (baseline["makespan_virtual_s"]
                                 / merged["makespan_virtual_s"]),
        },
        "prefetch": {
            "demand": demand,
            "speculative": speculative,
            "makespan_speedup": (demand["makespan_virtual_s"]
                                 / speculative["makespan_virtual_s"]),
        },
        "wall_clock": {
            "total_wall_s": time.perf_counter() - wall_start,
        },
    })
    assert request_reduction >= 0.2
