"""Figures 11 and 12: grep -q (single random match) on ext2, warm cache.

Paper shape: without SLEDs, times are high and highly variable ("large
error bars ... indicative of high variability caused by poor cache
performance"); with SLEDs, cached data is searched first, so most runs
find the (recently cached) match without physical I/O — low, stable times
and order-of-magnitude mean speedups above the cache size.
"""

from conftest import summarize_rows

from repro.bench.experiments import run_fig11, run_fig12

SIZES = (32, 96, 128)


def test_fig11_first_match_times(benchmark, config):
    result = benchmark.pedantic(run_fig11, args=(config, SIZES),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    rows = {row[0]: row for row in result.rows}
    # above the cache size, SLEDs wins on the mean
    assert rows[96][3] < rows[96][1]
    assert rows[128][3] < rows[128][1]


def test_fig12_speedup_above_cache(benchmark, config):
    result = benchmark.pedantic(run_fig12, args=(config, SIZES),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    speedups = dict(zip(result.column("MB"), result.column("speedup")))
    # below cache: modest (the record-management CPU tax can put it < 1)
    assert speedups[32] < 1.5
    # above cache: clear wins, trending toward the paper's order of
    # magnitude as position luck allows
    assert speedups[96] > 1.3
    assert speedups[128] > 1.3
