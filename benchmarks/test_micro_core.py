"""Microbenchmarks of the core SLEDs machinery itself.

These are the throughput numbers a library adopter cares about: how fast
is FSLEDS_GET on a fragmented file, how much CPU does the pick loop add,
how expensive is record adjustment.
"""

import numpy as np

from repro.cache.page_cache import PageCache
from repro.core.builder import build_sled_vector
from repro.core.pick import (
    sleds_pick_finish,
    sleds_pick_init,
    sleds_pick_next_read,
)
from repro.core.records import adjust_to_records
from repro.core.sled_table import SledTable
from repro.devices.disk import DiskDevice
from repro.fs.filesystem import Ext2Like
from repro.machine import Machine
from repro.sim.units import MB, PAGE_SIZE


def _fragmented_setup(file_pages=2048, stride=3):
    fs = Ext2Like(DiskDevice(rng=np.random.default_rng(1)))
    inode = fs.create_file("f", file_pages * PAGE_SIZE)
    cache = PageCache(file_pages)
    for page in range(0, file_pages, stride):
        cache.insert((inode.id, page))
    table = SledTable()
    table.fill({"memory": (1e-7, 48 * MB), "ext2": (0.018, 9 * MB)})
    return fs, inode, cache, table


def test_build_sled_vector_fragmented(benchmark):
    """FSLEDS_GET on a worst-case fragmented 8 MB file (every 3rd page
    cached -> ~1365 SLEDs)."""
    fs, inode, cache, table = _fragmented_setup()
    vector = benchmark(build_sled_vector, cache, fs, inode, table)
    assert len(vector) > 1000


def test_build_sled_vector_uniform(benchmark):
    """FSLEDS_GET on a fully cold 8 MB file (1 SLED)."""
    fs = Ext2Like(DiskDevice(rng=np.random.default_rng(1)))
    inode = fs.create_file("f", 2048 * PAGE_SIZE)
    cache = PageCache(64)
    table = SledTable()
    table.fill({"memory": (1e-7, 48 * MB), "ext2": (0.018, 9 * MB)})
    vector = benchmark(build_sled_vector, cache, fs, inode, table)
    assert len(vector) == 1


def test_pick_session_throughput(benchmark):
    """Full pick loop over a warm 4 MB file, 64 KB chunks."""
    machine = Machine.unix_utilities(cache_pages=512, seed=1)
    machine.boot()
    machine.ext2.create_text_file("f", 4 * MB, seed=1)
    k = machine.kernel
    k.warm_file("/mnt/ext2/f")

    def pick_all():
        fd = k.open("/mnt/ext2/f")
        sleds_pick_init(k, fd, 64 * 1024)
        count = 0
        while sleds_pick_next_read(k, fd) is not None:
            count += 1
        sleds_pick_finish(k, fd)
        k.close(fd)
        return count

    count = benchmark(pick_all)
    assert count == 64


def test_record_adjustment_cost(benchmark):
    """Record-boundary adjustment on an interleaved-residency text file."""
    machine = Machine.unix_utilities(cache_pages=1024, seed=2)
    machine.boot()
    machine.ext2.create_text_file("f", 2 * MB, seed=2)
    k = machine.kernel
    inode = machine.ext2.resolve(["f"])
    for page in range(0, inode.npages, 7):
        k.page_cache.insert((inode.id, page))
    fd = k.open("/mnt/ext2/f")
    vector = k.get_sleds(fd)

    adjusted = benchmark(adjust_to_records, k, fd, vector)
    assert adjusted.file_size == 2 * MB


def test_page_cache_access_throughput(benchmark):
    """Hot-path cache access/insert mix."""
    cache = PageCache(4096)
    keys = [(1, i % 8192) for i in range(20_000)]

    def churn():
        hits = 0
        for key in keys:
            if cache.access(key):
                hits += 1
            else:
                cache.insert(key)
        return hits

    hits = benchmark(churn)
    assert hits > 0


def test_kernel_read_path_throughput(benchmark):
    """End-to-end syscall read path, warm cache, 64 KB reads of 4 MB."""
    machine = Machine.unix_utilities(cache_pages=2048, seed=3)
    machine.boot()
    machine.ext2.create_text_file("f", 4 * MB, seed=3)
    k = machine.kernel
    k.warm_file("/mnt/ext2/f")

    def scan():
        fd = k.open("/mnt/ext2/f")
        total = 0
        while True:
            blob = k.read(fd, 64 * 1024)
            if not blob:
                break
            total += len(blob)
        k.close(fd)
        return total

    total = benchmark(scan)
    assert total == 4 * MB


def test_regex_engine_throughput(benchmark):
    """Microbenchmark: NFA matching over a batch of lines."""
    from repro.apps.regex import compile_regex

    compiled = compile_regex(b"err(or)?-[0-9]+")
    lines = [b"a perfectly ordinary log line with nothing in it " * 2,
             b"warning: error-4091 detected in sector 7",
             b"err-17 transient",
             b"x" * 120] * 64

    def scan():
        return sum(1 for line in lines if compiled.matches(line))

    hits = benchmark(scan)
    assert hits == 128


def test_fsck_full_machine(benchmark):
    """Microbenchmark: consistency check of a populated filesystem."""
    from repro.fs.check import check_filesystem
    machine = Machine.unix_utilities(cache_pages=128, seed=5)
    machine.boot()
    for i in range(50):
        machine.ext2.create_text_file(f"tree/d{i % 7}/f{i}.txt",
                                      (1 + i % 5) * PAGE_SIZE, seed=i)

    problems = benchmark(check_filesystem, machine.ext2)
    assert problems == []


def test_fileset_reestimation(benchmark):
    """Microbenchmark: latency-ordering a 20-file set with re-estimation."""
    from repro.apps.filesets import iterate_by_latency
    machine = Machine.unix_utilities(cache_pages=256, seed=6)
    machine.boot()
    paths = []
    for i in range(20):
        machine.ext2.create_text_file(f"set/f{i}.txt", 4 * PAGE_SIZE,
                                      seed=i)
        paths.append(f"/mnt/ext2/set/f{i}.txt")
    machine.kernel.warm_file(paths[13])

    def order():
        return list(iterate_by_latency(machine.kernel, paths))

    ordered = benchmark(order)
    assert ordered[0] == paths[13]
