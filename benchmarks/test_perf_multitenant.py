"""Multi-tenant fairness at a thousand tasks: fair elevator vs FCFS.

The multi-tenant kernel exists so one tenant's I/O appetite cannot
starve another's: the budget-based fair elevator gives every backlogged
tenant the same byte budget per round, where a blind queue serves
tenants in proportion to their outstanding requests.  This benchmark
runs **1000 tenant-labelled tasks** — 900 disk readers across ten
tenants (five "hog" tenants running 150 concurrent streams each, five
"small" tenants running 30, all issuing identical 4-page chunks), 60
NFS readers across two tenants, and 40 HSM/tape retrievals across two
more — twice on the same seeded machine:

* once under the **fair** elevator (``MachineConfig(fair_elevator=True)``),
* once under **FCFS**, the starvation baseline.

For the ten disk tenants we measure the *service share*: bytes of disk
service each tenant received inside the contention window (up to the
first tenant finishing, so every tenant is backlogged throughout).

* **asserted**: every task finishes in both runs; under the fair
  elevator the max/min per-tenant service-share ratio is **<= 4x**
  (the starvation gate); the FCFS ratio is strictly worse — the
  starvation it demonstrates is recorded in the same payload;
* **recorded**: per-tenant shares, Jain's fairness index, per-tenant
  p99 fault latency and its spread, makespan, aggregate throughput for
  both schedulers.  Host wall times live under ``wall_clock``, which
  the ``sleds-bench check`` gate skips; every other leaf is virtual
  time and deterministic.
"""

from __future__ import annotations

import time

from repro.bench.results import publish_bench
from repro.block.scheduler import make_scheduler
from repro.devices.network import NfsDevice
from repro.fs.nfs import NfsLike
from repro.machine import Machine, MachineConfig
from repro.obs import Telemetry
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import PAGE_SIZE

SEED = 4242
#: far below the ten disk tenants' cycling working set (2400 pages), so
#: every chunk read is a device visit and the elevator stays contended
CACHE_PAGES = 256
FILE_PAGES = 240                # per disk tenant

HOG_TENANTS = 5                 # 150 concurrent streams each
SMALL_TENANTS = 5               # 30 concurrent streams each
HOG_TASKS = 150
SMALL_TASKS = 30                # 5*150 + 5*30 = 900 disk tasks
CHUNKS_PER_TASK = 2
CHUNK_PAGES = 4                 # identical request size for everyone

NFS_TENANTS = 2
NFS_TASKS_PER_TENANT = 30       # 60 NFS tasks
NFS_FILE_PAGES = 128

TAPE_TENANTS = 2
TAPE_TASKS_PER_TENANT = 20      # 40 tape retrievals
TAPE_FILE_PAGES = 8

DISK_TENANTS = ([f"hog{i}" for i in range(HOG_TENANTS)]
                + [f"small{i}" for i in range(SMALL_TENANTS)])

#: the ISSUE gate: fair elevator max/min per-tenant service share
FAIR_SHARE_GATE = 4.0


def _world(fair: bool) -> Machine:
    machine = Machine.hsm(cache_pages=CACHE_PAGES, stage_pages=1024,
                          seed=SEED,
                          config=MachineConfig(fair_elevator=fair))
    # the HSM profile has disk + tape; add an NFS mount so the task mix
    # spans all three classes
    machine.mount("/mnt/nfs", NfsLike(
        NfsDevice(name="nfs-server",
                  rng=machine.kernel.rng.stream("nfs")),
        name="nfs"))
    machine.boot()
    for index, name in enumerate(DISK_TENANTS):
        machine.ext2.create_text_file(f"{name}.dat",
                                      FILE_PAGES * PAGE_SIZE, seed=index)
    for t in range(NFS_TENANTS):
        machine.nfs.create_text_file(f"n{t}.dat",
                                     NFS_FILE_PAGES * PAGE_SIZE,
                                     seed=50 + t)
    for t in range(TAPE_TENANTS):
        for i in range(TAPE_TASKS_PER_TENANT):
            vol = (t * TAPE_TASKS_PER_TENANT + i) % 8
            machine.hsmfs.create_tape_file(f"t{t}_{i}.dat",
                                           TAPE_FILE_PAGES * PAGE_SIZE,
                                           f"VOL{vol:03d}")
    return machine


def _chunk_reader(kernel, path: str, task_index: int, chunk_pages: int):
    fd = kernel.open(path)
    span = FILE_PAGES - chunk_pages
    for c in range(CHUNKS_PER_TASK):
        page = ((task_index * 7 + c * 13) * chunk_pages) % span
        yield from kernel.pread_async(fd, page * PAGE_SIZE,
                                      chunk_pages * PAGE_SIZE)
    kernel.close(fd)


def _whole_file_reader(kernel, path: str, nbytes: int):
    fd = kernel.open(path)
    yield from kernel.pread_async(fd, 0, nbytes)
    kernel.close(fd)


def _build_tasks(kernel) -> list[Task]:
    """All 1000 tasks, tenants interleaved so FCFS arrival order gives
    no tenant a positional advantage."""
    tasks: list[Task] = []
    for i in range(HOG_TASKS):
        for tenant in DISK_TENANTS:
            streams = (HOG_TASKS if tenant.startswith("hog")
                       else SMALL_TASKS)
            if i >= streams:
                continue
            tasks.append(Task(
                f"{tenant}.{i}",
                _chunk_reader(kernel, f"/mnt/ext2/{tenant}.dat", i,
                              CHUNK_PAGES),
                tenant=tenant))
    for i in range(NFS_TASKS_PER_TENANT):
        for t in range(NFS_TENANTS):
            tasks.append(Task(
                f"nfs{t}.{i}",
                _chunk_reader(kernel, f"/mnt/nfs/n{t}.dat", i,
                              CHUNK_PAGES),
                tenant=f"nfs{t}"))
    for i in range(TAPE_TASKS_PER_TENANT):
        for t in range(TAPE_TENANTS):
            tasks.append(Task(
                f"tape{t}.{i}",
                _whole_file_reader(kernel, f"/mnt/hsm/t{t}_{i}.dat",
                                   TAPE_FILE_PAGES * PAGE_SIZE),
                tenant=f"tape{t}"))
    return tasks


def _p99(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[int(0.99 * (len(ordered) - 1))]


def _jain(shares: list[int]) -> float:
    return (sum(shares) ** 2) / (len(shares) * sum(s * s for s in shares))


def _run(scheduler: str) -> dict:
    fair = scheduler == "fair"
    machine = _world(fair)
    kernel = machine.kernel
    if not fair:
        kernel.io_scheduler = make_scheduler("fcfs")
    telemetry = Telemetry()
    telemetry.attach(kernel)
    engine = kernel.attach_engine()
    tasks = _build_tasks(kernel)
    assert len(tasks) >= 1000
    start = kernel.clock.now
    wall_start = time.perf_counter()
    stats = EventScheduler(kernel, tasks, engine=engine).run()
    wall = time.perf_counter() - wall_start
    makespan = kernel.clock.now - start
    kernel.detach_engine()
    assert all(s.finished_at is not None for s in stats.values())

    # contention window: up to the first disk tenant completing, so
    # every tenant is demonstrably backlogged for the whole interval
    tenant_done = {tenant: max(
        stats[task.name].finished_at for task in tasks
        if task.tenant == tenant) for tenant in DISK_TENANTS}
    window_end = min(tenant_done.values())

    served = dict.fromkeys(DISK_TENANTS, 0)
    latencies: dict[str, list[float]] = {t: [] for t in DISK_TENANTS}
    disk_bytes = 0
    for rec in telemetry.lifecycle.records:
        if rec.device_class == "disk" and rec.tenant in served:
            disk_bytes += rec.nbytes
            latencies[rec.tenant].append(rec.finish_time - rec.submit_time)
            if rec.finish_time <= window_end:
                served[rec.tenant] += rec.nbytes
    shares = [served[t] for t in DISK_TENANTS]
    share_ratio = max(shares) / max(min(shares), 1)
    p99s = {t: _p99(samples) for t, samples in latencies.items()}
    p99_spread = max(p99s.values()) / min(p99s.values())

    return {
        "makespan_virtual_s": makespan,
        "window_virtual_s": window_end - start,
        "service_share_bytes": served,
        "share_ratio_max_min": share_ratio,
        "jain_index": _jain(shares),
        "p99_latency_s": p99s,
        "p99_spread_max_min": p99_spread,
        "disk_throughput_mb_per_virtual_s":
            disk_bytes / makespan / (1 << 20),
        "wall_s": wall,
    }


def test_fair_elevator_bounds_tenant_share_spread():
    fair = _run("fair")
    fcfs = _run("fcfs")
    fair_wall = fair.pop("wall_s")
    fcfs_wall = fcfs.pop("wall_s")

    # the gate: under DRR no disk tenant's service share may exceed any
    # other's by more than 4x inside the contention window ...
    assert fair["share_ratio_max_min"] <= FAIR_SHARE_GATE
    # ... while the blind FCFS baseline demonstrably serves the hogs'
    # 150 streams ahead of the small tenants' 30
    assert fcfs["share_ratio_max_min"] > fair["share_ratio_max_min"]
    assert fair["jain_index"] > fcfs["jain_index"]

    publish_bench("multitenant", {
        "benchmark": "multitenant",
        "description": ("1000 tenant-labelled tasks (900 disk / 60 NFS / "
                        "40 tape) under the fair elevator vs FCFS; "
                        "per-tenant disk service shares inside the "
                        "contention window"),
        "tasks_total": (HOG_TENANTS * HOG_TASKS
                        + SMALL_TENANTS * SMALL_TASKS
                        + NFS_TENANTS * NFS_TASKS_PER_TENANT
                        + TAPE_TENANTS * TAPE_TASKS_PER_TENANT),
        "task_mix": {
            "disk": HOG_TENANTS * HOG_TASKS + SMALL_TENANTS * SMALL_TASKS,
            "nfs": NFS_TENANTS * NFS_TASKS_PER_TENANT,
            "tape": TAPE_TENANTS * TAPE_TASKS_PER_TENANT,
        },
        "disk_tenants": len(DISK_TENANTS),
        "share_gate_max_min": FAIR_SHARE_GATE,
        "fair": fair,
        "fcfs": fcfs,
        "starvation_contrast":
            fcfs["share_ratio_max_min"] / fair["share_ratio_max_min"],
        "wall_clock": {"fair_s": fair_wall, "fcfs_s": fcfs_wall},
    })
