"""Figure 3: movement of data among storage levels during two linear
passes — the LRU pathology that motivates reordering."""

from conftest import summarize_rows

from repro.bench.experiments import run_fig3


def test_fig3_two_pass_trace(benchmark, config):
    result = benchmark.pedantic(run_fig3, args=(config,),
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    second_pass = [row for row in result.rows if row[0] == 2]
    assert len(second_pass) == 5
    assert all(row[3] == "FAULT" for row in second_pass), \
        "the second linear pass must gain nothing from the cache"
    assert "SLEDs order = 2/5" in result.notes[0], \
        "cached-first order must fault on exactly the 2 uncached blocks"
