"""Design-choice ablations: pick order and readahead cluster size
(DESIGN.md §5.1-§5.2)."""

from conftest import summarize_rows

from repro.bench.ablations import run_abl_pick_order, run_abl_readahead


def test_pick_order_ablation(benchmark, config):
    result = benchmark.pedantic(run_abl_pick_order, args=(config,),
                                kwargs={"paper_mb": 64},
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    times = dict(zip(result.column("order"),
                     result.column("time s (paper-eq)")))
    pages = dict(zip(result.column("order"),
                     result.column("device pages")))
    # lowest-latency-first reads less from the device than linear order
    # (which rereads everything, exactly like the non-SLEDs baseline)
    assert pages["sleds"] < pages["linear"]
    assert times["sleds"] < times["linear"]
    # random order must not beat the deliberate order
    assert times["sleds"] <= times["random"]


def test_readahead_ablation(benchmark, config):
    result = benchmark.pedantic(run_abl_readahead, args=(config,),
                                kwargs={"paper_mb": 32},
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    windows = result.column("max window (pages)")
    times = result.column("time s (paper-eq)")
    by_window = dict(zip(windows, times))
    # larger clusters amortise per-access latency: 16-page readahead must
    # clearly beat single-page I/O, so the non-SLEDs baseline streams at
    # realistic bandwidth (no strawman)
    assert by_window[16] < by_window[1]
    assert by_window[4] < by_window[1]
