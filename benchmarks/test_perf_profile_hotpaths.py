"""Hot-path profiler coverage benchmark: where does host CPU time go?

Three deterministic phases, one profiler, so every declared site in
:data:`repro.obs.profile.SITES` is exercised:

* **async striding readers** over a cold ext2 file with merging +
  plugging on and SLED vectors requested up front — the event-loop,
  SLED-build, residency, and merge/flush sites;
* **blocking pread sweep** over a second cold file with no telemetry
  attached — the vectorised fault path (``kernel.fault_batch``) and the
  whole-run device kernels (``device.batch_math``);
* **telemetry replay**: the striding readers again, over a third cold
  file, with telemetry attached — the deferred fan-in flush
  (``obs.telemetry_flush``).

The per-site *call counts* and the virtual-time results are
deterministic and participate in the ``sleds-bench check`` gate: a
change that silently stops exercising a hot path (or doubles the event
count) trips the baseline comparison.  The wall-second measurements are
host-dependent and live under ``wall_clock`` keys, which the gate
skips.
"""

from __future__ import annotations

import time

from repro.bench.results import publish_bench
from repro.block.merge import BlockConfig
from repro.machine import Machine
from repro.obs import HotPathProfiler
from repro.obs.profile import SITES
from repro.obs.telemetry import Telemetry
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import PAGE_SIZE

SEED = 4242
FILE_PAGES = 256
READERS = 3
CHUNK_PAGES = 4


def _striding_readers(kernel, path):
    nchunks = FILE_PAGES // CHUNK_PAGES

    def reader(start):
        fd = kernel.open(path)
        kernel.get_sleds(fd)  # exercise the SLED-build site
        for chunk in range(start, nchunks, READERS):
            yield from kernel.pread_async(
                fd, chunk * CHUNK_PAGES * PAGE_SIZE,
                CHUNK_PAGES * PAGE_SIZE)
        kernel.close(fd)

    return [Task(f"r{i}", reader(i)) for i in range(READERS)]


def test_profile_hotpaths_record():
    wall_start = time.perf_counter()

    machine = Machine.unix_utilities(cache_pages=4096, seed=SEED)
    machine.boot()
    for name in ("bench.dat", "storm.dat", "tele.dat"):
        machine.ext2.create_text_file(name, FILE_PAGES * PAGE_SIZE, seed=1)
    kernel = machine.kernel
    profiler = HotPathProfiler().attach(kernel)
    engine = kernel.attach_engine(block=BlockConfig(merge=True, plug=True))

    start = kernel.clock.now
    stats = EventScheduler(
        kernel, _striding_readers(kernel, "/mnt/ext2/bench.dat"),
        engine=engine).run()
    makespan = kernel.clock.now - start

    # phase 2: blocking sweep, telemetry-free — the vectorised fault path
    fd = kernel.open("/mnt/ext2/storm.dat")
    offset = 0
    while offset < FILE_PAGES * PAGE_SIZE:
        kernel.pread(fd, offset, CHUNK_PAGES * PAGE_SIZE)
        offset += CHUNK_PAGES * PAGE_SIZE
    kernel.close(fd)

    # phase 3: striding readers with telemetry — the deferred fan-in flush
    telemetry = Telemetry()
    telemetry.attach(kernel)
    EventScheduler(kernel, _striding_readers(kernel, "/mnt/ext2/tele.dat"),
                   engine=engine).run()

    rows = profiler.rows(virtual_seconds=makespan)

    # every declared hot path must be exercised by this workload
    assert {row["site"] for row in rows} == set(SITES)
    assert all(row["calls"] > 0 for row in rows)
    assert profiler.total_wall_seconds > 0.0

    publish_bench("profile_hotpaths", {
        "benchmark": "profile_hotpaths",
        "description": ("hot-path profiler over striding concurrent "
                        "readers with merge+plug and SLED vectors, a "
                        "blocking vectorised-fault sweep, and a "
                        "telemetry replay: deterministic per-site call "
                        "counts gate; wall seconds recorded but exempt"),
        "file_pages": FILE_PAGES,
        "readers": READERS,
        "chunk_pages": CHUNK_PAGES,
        "makespan_virtual_s": makespan,
        "hard_faults": sum(s.hard_faults for s in stats.values()),
        "site_calls": {row["site"]: row["calls"] for row in rows},
        "wall_clock": {
            "total_wall_s": time.perf_counter() - wall_start,
            "instrumented_wall_s": profiler.total_wall_seconds,
            "sites": {
                row["site"]: {
                    "wall_seconds": row["wall_seconds"],
                    "wall_mean_us": row["wall_mean_us"],
                    "wall_max_us": row["wall_max_us"],
                    "wall_per_virtual_second":
                        row["wall_per_virtual_second"],
                }
                for row in rows
            },
        },
    })
