"""Core throughput benchmark: the PR-7 hot-structure rewrite, measured.

Two deterministic workloads, each run twice — once under the pre-PR-7
reference backends (``MachineConfig(residency="sets", event_loop="heap")``)
and once under the tuned defaults (interval runs + calendar queue):

* **sled_refetch** — striding concurrent readers over a cold ext2 file
  with merge + plug on, requesting a fresh SLED vector before *every*
  chunk (the ``sleds_pick`` usage pattern).  The reference backend pays
  an O(resident · log resident) sort per vector; the runs backend pays
  O(runs).  This is the headline speedup.
* **fault_storm** — blocking sequential re-reads of a file 4x the cache,
  so every page hard-faults every pass.  This is the raw fault-path
  throughput number the ``sleds-run profile --budget`` gate consumes.

Virtual-time results (makespans, fault counts, events fired) must be
bit-identical between backends — asserted here and hard-gated by
``sleds-bench check``.  Wall-clock measurements are host-dependent and
live under ``wall_clock`` keys, which the gate skips.

Throughput budget: 250k simulated faults/s on the fault storm.  The
honest measured number on the development host is ~80k faults/s (the
fault path is dominated by device-model arithmetic and telemetry, not
the structures this PR rewrote), so ``budget_met`` is recorded rather
than asserted; the budget stands as the target for future fault-path
work.  See docs/performance.md.
"""

from __future__ import annotations

import time

from repro.bench.results import publish_bench
from repro.block.merge import BlockConfig
from repro.machine import Machine, MachineConfig
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import PAGE_SIZE

SEED = 7077

# sled_refetch: striding readers, one get_sleds per chunk
REFETCH_FILE_PAGES = 8192
READERS = 4
CHUNK_PAGES = 2

# fault_storm: sequential re-reads through a too-small cache
STORM_FILE_PAGES = 8192
STORM_CACHE_PAGES = 2048
STORM_PASSES = 6
STORM_CHUNK_PAGES = 64

#: target simulated faults/s on the fault storm (recorded, not asserted)
BUDGET_FAULTS_PER_S = 250_000

#: the weak wall-clock floor we *do* assert (the measured speedup is ~4x;
#: 1.5x keeps the assertion meaningful without inviting CI flake)
MIN_SPEEDUP = 1.5

REFERENCE = MachineConfig(residency="sets", event_loop="heap")
TUNED = MachineConfig()


def _refetch_readers(kernel):
    nchunks = REFETCH_FILE_PAGES // CHUNK_PAGES

    def reader(start):
        fd = kernel.open("/mnt/ext2/bench.dat")
        for chunk in range(start, nchunks, READERS):
            kernel.get_sleds(fd)
            yield from kernel.pread_async(
                fd, chunk * CHUNK_PAGES * PAGE_SIZE,
                CHUNK_PAGES * PAGE_SIZE)
        kernel.close(fd)

    return [Task(f"r{i}", reader(i)) for i in range(READERS)]


def _run_sled_refetch(config: MachineConfig) -> dict:
    machine = Machine.unix_utilities(cache_pages=REFETCH_FILE_PAGES * 2,
                                     seed=SEED, config=config)
    machine.boot()
    machine.ext2.create_text_file("bench.dat",
                                  REFETCH_FILE_PAGES * PAGE_SIZE, seed=1)
    kernel = machine.kernel
    engine = kernel.attach_engine(block=BlockConfig(merge=True, plug=True))

    start = kernel.clock.now
    wall_start = time.perf_counter()
    EventScheduler(kernel, _refetch_readers(kernel), engine=engine).run()
    wall = time.perf_counter() - wall_start
    return {
        "makespan_virtual_s": kernel.clock.now - start,
        "hard_faults": kernel.counters.hard_faults,
        "events_fired": engine.loop.fired,
        "wall_s": wall,
    }


def _run_fault_storm(config: MachineConfig) -> dict:
    machine = Machine.unix_utilities(cache_pages=STORM_CACHE_PAGES,
                                     seed=SEED, config=config)
    machine.boot()
    machine.ext2.create_text_file("storm.dat",
                                  STORM_FILE_PAGES * PAGE_SIZE, seed=1)
    kernel = machine.kernel
    fd = kernel.open("/mnt/ext2/storm.dat")
    size = STORM_FILE_PAGES * PAGE_SIZE
    chunk = STORM_CHUNK_PAGES * PAGE_SIZE

    start = kernel.clock.now
    faults_before = kernel.counters.hard_faults
    wall_start = time.perf_counter()
    for _ in range(STORM_PASSES):
        offset = 0
        while offset < size:
            kernel.pread(fd, offset, chunk)
            offset += chunk
    wall = time.perf_counter() - wall_start
    kernel.close(fd)
    return {
        "makespan_virtual_s": kernel.clock.now - start,
        "hard_faults": kernel.counters.hard_faults - faults_before,
        "wall_s": wall,
    }


def test_core_throughput_record():
    refetch_ref = _run_sled_refetch(REFERENCE)
    refetch_tuned = _run_sled_refetch(TUNED)
    storm_ref = _run_fault_storm(REFERENCE)
    storm_tuned = _run_fault_storm(TUNED)

    # the backends are semantics-preserving: bit-identical virtual time
    for ref, tuned in ((refetch_ref, refetch_tuned),
                       (storm_ref, storm_tuned)):
        assert ref["makespan_virtual_s"] == tuned["makespan_virtual_s"]
        assert ref["hard_faults"] == tuned["hard_faults"]
    assert refetch_ref["events_fired"] == refetch_tuned["events_fired"]

    speedup = refetch_ref["wall_s"] / refetch_tuned["wall_s"]
    assert speedup >= MIN_SPEEDUP, (
        f"sled_refetch speedup {speedup:.2f}x below floor {MIN_SPEEDUP}x")

    storm_faults_per_s = storm_tuned["hard_faults"] / storm_tuned["wall_s"]

    publish_bench("core_throughput", {
        "benchmark": "core_throughput",
        "description": ("PR-7 core rewrite: striding readers refetching "
                        "SLED vectors per chunk (sets+heap reference vs "
                        "runs+bucket) and a sequential fault storm; "
                        "virtual-time results gate, wall clock exempt"),
        "reference_config": {"residency": REFERENCE.residency,
                             "event_loop": REFERENCE.event_loop},
        "tuned_config": {"residency": TUNED.residency,
                         "event_loop": TUNED.event_loop},
        "sled_refetch": {
            "file_pages": REFETCH_FILE_PAGES,
            "readers": READERS,
            "chunk_pages": CHUNK_PAGES,
            "makespan_virtual_s": refetch_tuned["makespan_virtual_s"],
            "hard_faults": refetch_tuned["hard_faults"],
            "events_fired": refetch_tuned["events_fired"],
        },
        "fault_storm": {
            "file_pages": STORM_FILE_PAGES,
            "cache_pages": STORM_CACHE_PAGES,
            "passes": STORM_PASSES,
            "chunk_pages": STORM_CHUNK_PAGES,
            "makespan_virtual_s": storm_tuned["makespan_virtual_s"],
            "hard_faults": storm_tuned["hard_faults"],
        },
        "wall_clock": {
            "sled_refetch": {
                "reference_wall_s": refetch_ref["wall_s"],
                "tuned_wall_s": refetch_tuned["wall_s"],
                "speedup": speedup,
                "tuned_faults_per_s":
                    refetch_tuned["hard_faults"] / refetch_tuned["wall_s"],
            },
            "fault_storm": {
                "reference_wall_s": storm_ref["wall_s"],
                "tuned_wall_s": storm_tuned["wall_s"],
                "speedup": storm_ref["wall_s"] / storm_tuned["wall_s"],
                "tuned_faults_per_s": storm_faults_per_s,
            },
            "budget_faults_per_s": BUDGET_FAULTS_PER_S,
            "budget_met": bool(storm_faults_per_s >= BUDGET_FAULTS_PER_S),
        },
    })
