"""Core throughput benchmark: hot-structure rewrite + vectorised faults.

Two deterministic workloads, each run under the pre-PR-7 reference
backends (``MachineConfig(residency="sets", event_loop="heap")``) and
under the tuned defaults (interval runs + calendar queue):

* **sled_refetch** — striding concurrent readers over a cold ext2 file
  with merge + plug on, requesting a fresh SLED vector before *every*
  chunk (the ``sleds_pick`` usage pattern).  The reference backend pays
  an O(resident · log resident) sort per vector; the runs backend pays
  O(runs).  This is the headline speedup.
* **fault_storm** — blocking sequential re-reads of a file 4x the cache,
  so every page hard-faults every pass.  This is the raw fault-path
  throughput number the ``sleds-run profile --budget`` gate consumes.
  Both configs ride the vectorised fault path (run-batched device math,
  ``insert_run``, ``advance_run`` — see docs/performance.md); the tuned
  config wins on top of it because a batched insert costs the runs
  index two splices per cluster where the sets index pays per page.
  The storm is timed ``STORM_REPS`` times per config, interleaved, and
  scored on the best wall time — the gap is structural but only a few
  percent of a run dominated by config-independent work, so single
  samples are noise-bound.

Virtual-time results (makespans, fault counts, events fired) must be
bit-identical between backends — asserted here and hard-gated by
``sleds-bench check``.  Wall-clock measurements are host-dependent and
live under ``wall_clock`` keys, which the gate skips; that subtree also
carries the per-site breakdown of where the storm's wall time goes
(device math / telemetry fan-in / kernel plumbing), so the next
throughput PR can see what is left.

Throughput budget: 250k simulated faults/s on the fault storm, met on
the development host since the fault path was vectorised (~290k; the
scalar reference path measures ~70k).  ``budget_met`` is recorded in
the committed baseline and enforced in CI by the calibrated
``sleds-run profile --storm --budget`` gate.  See docs/performance.md.
"""

from __future__ import annotations

import time

from repro.bench.results import publish_bench
from repro.block.merge import BlockConfig
from repro.machine import Machine, MachineConfig
from repro.obs.profile import HotPathProfiler
from repro.obs.telemetry import Telemetry
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import PAGE_SIZE

SEED = 7077

# sled_refetch: striding readers, one get_sleds per chunk
REFETCH_FILE_PAGES = 8192
READERS = 4
CHUNK_PAGES = 2

# fault_storm: sequential re-reads through a too-small cache
STORM_FILE_PAGES = 8192
STORM_CACHE_PAGES = 2048
STORM_PASSES = 6
STORM_CHUNK_PAGES = 64
STORM_REPS = 3

#: target simulated faults/s on the fault storm
BUDGET_FAULTS_PER_S = 250_000

#: the weak wall-clock floor we assert on the refetch scenario (the
#: measured speedup is ~4x; 1.5x keeps the assertion meaningful without
#: inviting CI flake)
MIN_SPEEDUP = 1.5

REFERENCE = MachineConfig(residency="sets", event_loop="heap")
TUNED = MachineConfig()


def _refetch_readers(kernel):
    nchunks = REFETCH_FILE_PAGES // CHUNK_PAGES

    def reader(start):
        fd = kernel.open("/mnt/ext2/bench.dat")
        for chunk in range(start, nchunks, READERS):
            kernel.get_sleds(fd)
            yield from kernel.pread_async(
                fd, chunk * CHUNK_PAGES * PAGE_SIZE,
                CHUNK_PAGES * PAGE_SIZE)
        kernel.close(fd)

    return [Task(f"r{i}", reader(i)) for i in range(READERS)]


def _run_sled_refetch(config: MachineConfig) -> dict:
    machine = Machine.unix_utilities(cache_pages=REFETCH_FILE_PAGES * 2,
                                     seed=SEED, config=config)
    machine.boot()
    machine.ext2.create_text_file("bench.dat",
                                  REFETCH_FILE_PAGES * PAGE_SIZE, seed=1)
    kernel = machine.kernel
    engine = kernel.attach_engine(block=BlockConfig(merge=True, plug=True))

    start = kernel.clock.now
    wall_start = time.perf_counter()
    EventScheduler(kernel, _refetch_readers(kernel), engine=engine).run()
    wall = time.perf_counter() - wall_start
    return {
        "makespan_virtual_s": kernel.clock.now - start,
        "hard_faults": kernel.counters.hard_faults,
        "events_fired": engine.loop.fired,
        "wall_s": wall,
    }


def _run_fault_storm(config: MachineConfig,
                     profiler: HotPathProfiler | None = None,
                     telemetry: bool = False) -> dict:
    machine = Machine.unix_utilities(cache_pages=STORM_CACHE_PAGES,
                                     seed=SEED, config=config)
    machine.boot()
    machine.ext2.create_text_file("storm.dat",
                                  STORM_FILE_PAGES * PAGE_SIZE, seed=1)
    kernel = machine.kernel
    if profiler is not None:
        profiler.attach(kernel)
    if telemetry:
        Telemetry().attach(kernel)
    fd = kernel.open("/mnt/ext2/storm.dat")
    size = STORM_FILE_PAGES * PAGE_SIZE
    chunk = STORM_CHUNK_PAGES * PAGE_SIZE

    start = kernel.clock.now
    faults_before = kernel.counters.hard_faults
    wall_start = time.perf_counter()
    for _ in range(STORM_PASSES):
        offset = 0
        while offset < size:
            kernel.pread(fd, offset, chunk)
            offset += chunk
    wall = time.perf_counter() - wall_start
    kernel.close(fd)
    return {
        "makespan_virtual_s": kernel.clock.now - start,
        "hard_faults": kernel.counters.hard_faults - faults_before,
        "wall_s": wall,
    }


def _storm_site_breakdown() -> dict:
    """Where the storm's wall time goes, by instrumented site.

    Two profiled runs (not used for the timed comparison): the plain
    storm exposes the vectorised fault sites; a telemetry-attached
    refetch pass exposes the deferred fan-in flush (the storm itself
    runs telemetry-free, and telemetry's device observers force the
    scalar device path by design).
    """
    storm_prof = HotPathProfiler()
    _run_fault_storm(TUNED, profiler=storm_prof)
    storm_sites = {row["site"]: row["wall_seconds"]
                   for row in storm_prof.rows()}

    tele_prof = HotPathProfiler()
    machine = Machine.unix_utilities(cache_pages=REFETCH_FILE_PAGES * 2,
                                     seed=SEED, config=TUNED)
    machine.boot()
    machine.ext2.create_text_file("bench.dat",
                                  REFETCH_FILE_PAGES * PAGE_SIZE, seed=1)
    kernel = machine.kernel
    tele_prof.attach(kernel)
    Telemetry().attach(kernel)
    engine = kernel.attach_engine(block=BlockConfig(merge=True, plug=True))
    EventScheduler(kernel, _refetch_readers(kernel), engine=engine).run()
    tele_sites = {row["site"]: row["wall_seconds"]
                  for row in tele_prof.rows()}

    fault_batch = storm_sites.get("kernel.fault_batch", 0.0)
    device_math = storm_sites.get("device.batch_math", 0.0)
    residency = storm_sites.get("cache.residency", 0.0)
    return {
        "device_math_wall_s": device_math,
        "telemetry_wall_s": tele_sites.get("obs.telemetry_flush", 0.0),
        "plumbing_wall_s": max(0.0, fault_batch - device_math - residency),
        "storm_sites": storm_sites,
        "telemetry_refetch_sites": tele_sites,
    }


def test_core_throughput_record():
    refetch_ref = _run_sled_refetch(REFERENCE)
    refetch_tuned = _run_sled_refetch(TUNED)
    storm_ref_runs = []
    storm_tuned_runs = []
    for _ in range(STORM_REPS):
        storm_ref_runs.append(_run_fault_storm(REFERENCE))
        storm_tuned_runs.append(_run_fault_storm(TUNED))
    storm_ref = dict(storm_ref_runs[0],
                     wall_s=min(r["wall_s"] for r in storm_ref_runs))
    storm_tuned = dict(storm_tuned_runs[0],
                       wall_s=min(r["wall_s"] for r in storm_tuned_runs))

    # the backends are semantics-preserving: bit-identical virtual time
    for ref, tuned in ((refetch_ref, refetch_tuned),
                       (storm_ref, storm_tuned)):
        assert ref["makespan_virtual_s"] == tuned["makespan_virtual_s"]
        assert ref["hard_faults"] == tuned["hard_faults"]
    assert refetch_ref["events_fired"] == refetch_tuned["events_fired"]
    for rep in storm_ref_runs + storm_tuned_runs:
        assert rep["makespan_virtual_s"] == storm_ref["makespan_virtual_s"]

    speedup = refetch_ref["wall_s"] / refetch_tuned["wall_s"]
    assert speedup >= MIN_SPEEDUP, (
        f"sled_refetch speedup {speedup:.2f}x below floor {MIN_SPEEDUP}x")

    # the tuned config must win the storm too (best-of-REPS; the edge is
    # the runs index's O(1) splices per batched cluster vs per-page sets)
    storm_speedup = storm_ref["wall_s"] / storm_tuned["wall_s"]
    assert storm_speedup > 1.0, (
        f"fault_storm: tuned config slower than reference "
        f"({storm_speedup:.3f}x)")

    storm_faults_per_s = storm_tuned["hard_faults"] / storm_tuned["wall_s"]

    publish_bench("core_throughput", {
        "benchmark": "core_throughput",
        "description": ("core rewrite + vectorised fault path: striding "
                        "readers refetching SLED vectors per chunk "
                        "(sets+heap reference vs runs+bucket) and a "
                        "sequential fault storm; virtual-time results "
                        "gate, wall clock exempt"),
        "reference_config": {"residency": REFERENCE.residency,
                             "event_loop": REFERENCE.event_loop},
        "tuned_config": {"residency": TUNED.residency,
                         "event_loop": TUNED.event_loop},
        "sled_refetch": {
            "file_pages": REFETCH_FILE_PAGES,
            "readers": READERS,
            "chunk_pages": CHUNK_PAGES,
            "makespan_virtual_s": refetch_tuned["makespan_virtual_s"],
            "hard_faults": refetch_tuned["hard_faults"],
            "events_fired": refetch_tuned["events_fired"],
        },
        "fault_storm": {
            "file_pages": STORM_FILE_PAGES,
            "cache_pages": STORM_CACHE_PAGES,
            "passes": STORM_PASSES,
            "chunk_pages": STORM_CHUNK_PAGES,
            "makespan_virtual_s": storm_tuned["makespan_virtual_s"],
            "hard_faults": storm_tuned["hard_faults"],
        },
        "wall_clock": {
            "sled_refetch": {
                "reference_wall_s": refetch_ref["wall_s"],
                "tuned_wall_s": refetch_tuned["wall_s"],
                "speedup": speedup,
                "tuned_faults_per_s":
                    refetch_tuned["hard_faults"] / refetch_tuned["wall_s"],
            },
            "fault_storm": {
                "reps": STORM_REPS,
                "reference_wall_s": storm_ref["wall_s"],
                "tuned_wall_s": storm_tuned["wall_s"],
                "speedup": storm_speedup,
                "tuned_faults_per_s": storm_faults_per_s,
            },
            "site_breakdown": _storm_site_breakdown(),
            "budget_faults_per_s": BUDGET_FAULTS_PER_S,
            "budget_met": bool(storm_faults_per_s >= BUDGET_FAULTS_PER_S),
        },
    })
