"""Extension experiments: HSM amplification, cache-policy ablation, and
SLED-staleness refresh (DESIGN.md Ext. A/B/C)."""

from conftest import summarize_rows

from repro.bench.ablations import run_extA, run_extB, run_extC


def test_extA_hsm_amplification(benchmark, config):
    result = benchmark.pedantic(run_extA, args=(config,),
                                kwargs={"paper_mb": 64},
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    t_without, t_with = result.rows[0][1], result.rows[1][1]
    # the paper's claim: HSM gains exceed the disk-based ones; at steady
    # state the SLEDs run avoids tape entirely
    assert t_with < t_without
    tape_without = result.rows[0][3]
    assert tape_without > 0, "the without run must keep hitting tape"


def test_extB_policy_ablation(benchmark, config):
    result = benchmark.pedantic(run_extB, args=(config,),
                                kwargs={"sizes_mb": (48, 96)},
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    by_policy = {}
    for policy, mb, t0, t1, speedup in result.rows:
        by_policy.setdefault(policy, {})[mb] = speedup
    # the Figure 3 pathology holds under LRU and CLOCK: SLEDs wins above
    # the cache size
    assert by_policy["lru"][96] > 1.2
    assert by_policy["clock"][96] > 1.2


def test_extC_refresh_cadence(benchmark, config):
    result = benchmark.pedantic(run_extC, args=(config,),
                                kwargs={"paper_mb": 96},
                                rounds=1, iterations=1)
    summarize_rows(result, benchmark)
    pages = dict(zip(result.column("refresh every"),
                     result.column("device pages")))
    # a fast-enough refresh reuses the prefetched pages before eviction,
    # cutting device traffic below the init-only session's
    assert pages[8] < pages["init only"]
